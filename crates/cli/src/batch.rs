//! `kpm batch` and `kpm serve` — front-ends to the [`kpm_serve`] subsystem.
//!
//! `batch` executes a jobs file (one `key=value...` spec per line, `#`
//! comments) through the worker pool and prints the per-job table plus
//! service metrics. `serve` reads the same lines from stdin until EOF or
//! SIGINT; on SIGINT pending jobs are cancelled, in-flight jobs finish, the
//! cache is flushed, and the metrics block is printed — a graceful drain in
//! both cases.

use crate::args::Args;
use crate::commands::CmdError;
use kpm_serve::{BatchConfig, BatchReport, BatchService, JobParseError, JobSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Service options shared by `batch` and `serve`. A non-numeric `--workers`
/// value is a shard-worker address list (handled by
/// [`crate::commands::shard_engine`]), not a thread count — the pool size
/// then stays on auto.
fn service_config(args: &Args) -> Result<BatchConfig, CmdError> {
    Ok(BatchConfig {
        workers: args.get("workers").and_then(|v| v.parse().ok()).unwrap_or(0),
        queue_capacity: args.get_or("queue", 256usize)?,
        timeout: Duration::from_secs_f64(args.get_or("timeout-secs", 300.0)?),
        max_retries: args.get_or("retries", 2u32)?,
        backoff_base: Duration::from_millis(args.get_or("backoff-ms", 20u64)?),
        cache_capacity: args.get_or("cache-capacity", 128usize)?,
        cache_dir: match args.get("cache-dir") {
            Some("none") => None,
            Some(dir) => Some(PathBuf::from(dir)),
            None => Some(PathBuf::from("results/cache")),
        },
    })
}

/// Starts the batch service, routing moment computation through a sharded
/// worker fleet when `--local-workers` / `--workers ADDR,...` selects one.
fn start_service(args: &Args) -> Result<BatchService, CmdError> {
    let engine = crate::commands::shard_engine(args)?
        .map(|e| std::sync::Arc::new(e) as std::sync::Arc<dyn kpm_serve::MomentEngine>);
    Ok(BatchService::start_with_engine(service_config(args)?, engine))
}

fn job_parse_err(lineno: usize, e: JobParseError) -> CmdError {
    match e {
        JobParseError::Spec(spec) => CmdError::Spec(spec),
        other => CmdError::Other(format!("jobs line {lineno}: {other}")),
    }
}

/// Submits with bounded waiting under backpressure: sleeps the queue's
/// `retry_after` hint (capped) and retries — the file driver has nowhere
/// else to put the job.
fn submit_blocking(service: &BatchService, spec: JobSpec) {
    loop {
        match service.submit(spec.clone()) {
            Ok(_) => return,
            Err(full) => std::thread::sleep(full.retry_after.min(Duration::from_millis(500))),
        }
    }
}

fn finish_report(report: &BatchReport, header: String) -> Result<String, CmdError> {
    let text = format!("{header}\n{}", report.render());
    let failed = report.failed();
    if failed > 0 {
        Err(CmdError::Jobs { failed, report: text })
    } else {
        Ok(text)
    }
}

/// `kpm batch <jobs-file>`.
pub fn batch(args: &Args, positionals: &[String]) -> Result<String, CmdError> {
    let Some(path) = positionals.first().map(String::as_str).or_else(|| args.get("jobs")) else {
        return Err(CmdError::Other("usage: kpm batch <jobs-file> [options]".into()));
    };
    if positionals.len() > 1 {
        return Err(CmdError::Other(format!("unexpected argument '{}'", positionals[1])));
    }
    let text = std::fs::read_to_string(path)?;
    let mut specs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        specs.push(JobSpec::parse(line).map_err(|e| job_parse_err(idx + 1, e))?);
    }
    if specs.is_empty() {
        return Err(CmdError::Other(format!("{path}: no jobs found")));
    }

    let service = start_service(args)?;
    let total = specs.len();
    for spec in specs {
        submit_blocking(&service, spec);
    }
    let report = service.finish();
    finish_report(&report, format!("batch of {total} jobs from {path}:"))
}

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint() {
    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

#[cfg(not(unix))]
fn install_sigint() {}

/// `kpm serve` — accept job lines on stdin until EOF or SIGINT.
pub fn serve(args: &Args) -> Result<String, CmdError> {
    let quiet = args.flag("quiet");
    let metrics_every = match args.get("metrics-every-secs") {
        None => None,
        Some(_) => {
            let secs: f64 = args.get_or("metrics-every-secs", 0.0)?;
            if secs <= 0.0 {
                return Err(CmdError::Other("--metrics-every-secs must be positive".into()));
            }
            Some(Duration::from_secs_f64(secs))
        }
    };
    let service = start_service(args)?;
    install_sigint();
    INTERRUPTED.store(false, Ordering::SeqCst);

    // Stdin is read on its own thread so the main loop can poll the SIGINT
    // flag; a blocked read would otherwise pin us until the next line.
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::BufRead as _;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    let mut accepted = 0usize;
    let mut next_dump = metrics_every.map(|every| Instant::now() + every);
    let interrupted = loop {
        if INTERRUPTED.load(Ordering::SeqCst) {
            break true;
        }
        if let (Some(every), Some(at)) = (metrics_every, next_dump) {
            if Instant::now() >= at {
                eprintln!("{}", service.metrics_json());
                next_dump = Some(at + every);
            }
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            // SIGINT often kills the stdin producer too (pipelines share the
            // foreground process group), so EOF and the signal race; prefer
            // the abort path whenever the signal arrived.
            Err(mpsc::RecvTimeoutError::Disconnected) => break INTERRUPTED.load(Ordering::SeqCst),
            Ok(line) => {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if line == "quit" || line == "exit" {
                    break false;
                }
                match JobSpec::parse(line) {
                    Err(e) => eprintln!("rejected: {e}"),
                    Ok(spec) => match service.submit(spec) {
                        Ok(id) => {
                            accepted += 1;
                            if !quiet {
                                eprintln!(
                                    "accepted job {id} (queue depth {})",
                                    service.queue_depth()
                                );
                            }
                        }
                        Err(full) => eprintln!("rejected: {full}"),
                    },
                }
            }
        }
    };

    let (report, verb) = if interrupted {
        (service.abort(), "interrupted; pending jobs cancelled, in-flight drained")
    } else {
        (service.finish(), "stdin closed; queue drained")
    };
    finish_report(&report, format!("serve: {verb} ({accepted} jobs accepted):"))
}
