//! Subcommand implementations.
//!
//! Each command returns its report as a `String` (testable) and optionally
//! writes CSV output; `main.rs` only prints.

use crate::args::{ArgError, Args};
use crate::spec::{parse_boundary, LatticeSpec};
use kpm::obs;
use kpm::prelude::*;
use kpm::propagate::{ComplexState, Propagator};
use kpm_lattice::OnSite;
use kpm_linalg::{MatrixFormat, SparseMatrix};
use kpm_stream::tune::tune_block_size;
use kpm_stream::{Mapping, StreamKpmEngine};
use kpm_streamsim::GpuSpec;
use std::fmt;
use std::fmt::Write as _;

/// Command errors (parse, KPM, or I/O).
#[derive(Debug)]
pub enum CmdError {
    /// Bad command-line usage.
    Args(ArgError),
    /// Bad lattice spec.
    Spec(crate::spec::SpecError),
    /// KPM pipeline failure.
    Kpm(KpmError),
    /// File output failure.
    Io(std::io::Error),
    /// A batch/serve run finished but some jobs failed; the full report is
    /// carried so `main` can still show it before exiting non-zero.
    Jobs {
        /// Number of failed jobs.
        failed: usize,
        /// Rendered per-job table plus metrics.
        report: String,
    },
    /// Distributed-run failure (worker fleet, wire protocol, shard merge).
    Shard(kpm_shard::ShardError),
    /// Network front-end failure (serve listener, submit client, KPNT
    /// protocol, server-side rejection).
    Net(kpm_net::NetError),
    /// Fleet-scheduler failure (journal I/O, no workers, stopped
    /// scheduler).
    Fleet(kpm_fleet::FleetError),
    /// Anything else (message).
    Other(String),
}

impl CmdError {
    /// Distinct process exit code per failure class, for scripting around
    /// the CLI (0 is success; 1 is the catch-all).
    pub fn exit_code(&self) -> u8 {
        match self {
            CmdError::Args(_) => 2,
            CmdError::Spec(_) => 3,
            CmdError::Kpm(_) => 4,
            CmdError::Io(_) => 5,
            CmdError::Jobs { .. } => 6,
            CmdError::Shard(_) => 7,
            CmdError::Net(_) => 8,
            CmdError::Fleet(_) => 9,
            CmdError::Other(_) => 1,
        }
    }
}

impl fmt::Display for CmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdError::Args(e) => write!(f, "{e}"),
            CmdError::Spec(e) => write!(f, "{e}"),
            CmdError::Kpm(e) => write!(f, "{e}"),
            CmdError::Io(e) => write!(f, "{e}"),
            CmdError::Jobs { failed, report } => {
                write!(f, "{report}\n{failed} job(s) failed")
            }
            CmdError::Shard(e) => write!(f, "{e}"),
            CmdError::Net(e) => write!(f, "{e}"),
            CmdError::Fleet(e) => write!(f, "{e}"),
            CmdError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CmdError {}

impl From<ArgError> for CmdError {
    fn from(e: ArgError) -> Self {
        CmdError::Args(e)
    }
}
impl From<crate::spec::SpecError> for CmdError {
    fn from(e: crate::spec::SpecError) -> Self {
        CmdError::Spec(e)
    }
}
impl From<KpmError> for CmdError {
    fn from(e: KpmError) -> Self {
        CmdError::Kpm(e)
    }
}
impl From<std::io::Error> for CmdError {
    fn from(e: std::io::Error) -> Self {
        CmdError::Io(e)
    }
}
impl From<kpm_stream::EngineError> for CmdError {
    fn from(e: kpm_stream::EngineError) -> Self {
        match e {
            kpm_stream::EngineError::Kpm(e) => CmdError::Kpm(e),
            other => CmdError::Other(other.to_string()),
        }
    }
}
impl From<kpm_serve::JobError> for CmdError {
    fn from(e: kpm_serve::JobError) -> Self {
        CmdError::Other(e.to_string())
    }
}
impl From<kpm_shard::ShardError> for CmdError {
    fn from(e: kpm_shard::ShardError) -> Self {
        CmdError::Shard(e)
    }
}
impl From<kpm_net::NetError> for CmdError {
    fn from(e: kpm_net::NetError) -> Self {
        CmdError::Net(e)
    }
}
impl From<kpm_fleet::FleetError> for CmdError {
    fn from(e: kpm_fleet::FleetError) -> Self {
        CmdError::Fleet(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
kpm — Kernel Polynomial Method toolkit

USAGE: kpm <command> [--key value ...]

COMMANDS:
  dos       density of states
  ldos      local density of states (--site N)
  evolve    wavepacket evolution (--time T [--site N])
  spectral  momentum-resolved A(k, omega) on a chain (--momenta K)
  batch     run a jobs file through the worker pool + moment cache
  serve     accept job lines on stdin until EOF or Ctrl-C, or over TCP
            with --listen ADDR
  submit    send a job to a kpm serve --listen server (--addr HOST:PORT)
  tune      `kpm tune [<lattice>]`: calibrate the execution profile for a
            lattice (probe sweep + profile store) and sweep block sizes for
            the simulated device
  bounds    `kpm bounds [<lattice>]`: inspect spectral bounds per provider
            (Gershgorin discs vs contained Lanczos) and the moment counts
            they imply at --resolution EPS
  estimate  modeled CPU vs GPU run times at any scale
  worker    serve shard computations over TCP (--listen ADDR [--once]
            [--inventory-cap N])
  fleet     run a jobs file (or --listen ADDR) on a persistent worker
            fleet with locality-aware scheduling and a restartable
            --journal DIR
  help      this text

COMMON OPTIONS:
  --lattice  chain:L | square:LX,LY | cubic:LX,LY,LZ | honeycomb:LX,LY
             (default cubic:10,10,10 — the paper's workload)
  --bc       open | periodic        (default periodic)
  --hopping  t                      (default 1.0)
  --disorder W [--dseed S]          (default none)
  --format   csr | ell | stencil | auto   (default csr)
  --moments  N                      (default 256)
  --resolution EPS     pick N for target energy resolution EPS from the
                       measured spectral half-width (overrides --moments)
  --random   R  --sets S            (default 14, 2)
  --kernel   jackson | lorentz | fejer | dirichlet | jacobi   (default
             jackson; jacobi takes --alpha A --beta B, default 0,0)
  --bounds   gershgorin | lanczos[:K] | manual:A,B   spectral-bounds
             provider (default gershgorin — the paper's discs; lanczos runs
             a contained K-step pass, default K = 64)
  --seed     master seed            (default 42)
  --device   host | sim | sim:N    (dos) backend: host runs on this machine;
                                   sim[:N] routes the same run through the
                                   N-device event-pipeline model (same
                                   numbers, plus a modeled time)
  --exec     auto | realizations | rows | hybrid   execution plan (default
             auto: calibrated profile when one exists, static prior otherwise;
             any other value overrides calibration)
  --threads  N                      worker-thread budget for row-tiled plans
                                    (default 0 = RAYON_NUM_THREADS or all cores)
  --profile-store DIR  persist calibrated execution profiles under DIR, or
                       'none' for memory only (default results/profiles for
                       `kpm tune`, memory-only elsewhere)
  --no-tune            disable calibrated planning (static heuristic only)
  --precision f64 | mixed    moments arithmetic (default f64; mixed = f32
                             recursion state with f64 accumulation, opt-in,
                             value-affecting — see DESIGN §12)
  --out      CSV path               (default none: table to stdout)
  --trace    FILE                   write a span/counter trace as JSON

SERVING OPTIONS (batch / serve):
  --workers N          worker threads       (default 0 = auto)
  --queue N            queue capacity       (default 256)
  --timeout-secs T     per-job timeout      (default 300)
  --retries N          retries on panic/timeout (default 2)
  --backoff-ms MS      retry backoff base   (default 20)
  --cache-capacity N   in-memory cache entries (default 128)
  --cache-dir DIR      on-disk cache spill, or 'none' (default results/cache)
  --metrics-every-secs S  (serve) dump metrics JSON to stderr every S seconds
  Job lines are whitespace-separated key=value pairs, e.g.
    lattice=cubic:10,10,10 moments=512 seed=7 kernel=lorentz:3 out=dos.csv

NETWORK OPTIONS (serve / submit):
  --listen ADDR        (serve) accept KPNT client sessions on ADDR instead
                       of stdin; Ctrl-C drains in-flight jobs and exits
  --max-inflight N     (serve --listen) per-session in-flight cap (default 32)
  --addr HOST:PORT     (submit) server address (default 127.0.0.1:7080)
  --spec 'k=v ...'     (submit) job line to run (or pass it positionally)
  --stream NAME        (submit) completion stream name (default cli)
  --refine N           (submit) streaming-refinement steps (default 1)
  --stats              (submit) also print the server metrics snapshot

DISTRIBUTED OPTIONS (dos / ldos / batch / serve):
  --local-workers N    shard realizations across N in-process workers
  --workers A,B,...    shard across remote `kpm worker` addresses (host:port)
  Merged moments are bitwise identical to an unsharded run with the same
  --seed, for any worker count or failure history.

FLEET OPTIONS (fleet / worker):
  --journal DIR        journal accepted rows to DIR; restarting on the same
                       DIR resumes the merge bitwise (fleet)
  --shards N           shards per job (default 4; fixed so restarts align)
  --no-locality        place shards least-loaded, ignoring warm state
  --inventory-cap N    (worker) warm moment-row cache entries (default 4096,
                       0 disables caching and locality advertisement)
  --kill-after N       crash the coordinator after N journaled results — a
                       restart drill for the --journal replay path
  Repeat specs route to workers already holding their operator or moment
  rows; results are bitwise identical either way.

EXIT CODES: 0 ok | 1 other | 2 args | 3 lattice spec | 4 kpm | 5 io | 6 jobs failed | 7 shard | 8 net | 9 fleet
";

/// Shared workload assembled from common options.
struct Workload {
    h: SparseMatrix,
    params: KpmParams,
}

fn workload(args: &Args) -> Result<Workload, CmdError> {
    let _span = obs::span("cli.workload");
    let spec = LatticeSpec::parse(args.get("lattice").unwrap_or("cubic:10,10,10"))?;
    let bc = parse_boundary(args.get("bc").unwrap_or("periodic"))?;
    let t: f64 = args.get_or("hopping", 1.0)?;
    let onsite = match args.get("disorder") {
        None => OnSite::Uniform(0.0),
        Some(w) => OnSite::Disorder {
            width: w
                .parse()
                .map_err(|_| CmdError::Other(format!("--disorder {w}: expected a number")))?,
            seed: args.get_or("dseed", 7u64)?,
        },
    };
    let format: MatrixFormat = args
        .get("format")
        .unwrap_or("csr")
        .parse()
        .map_err(|e: String| CmdError::Other(format!("--format: {e}")))?;
    let h = spec.build_format(t, onsite, bc, format);

    let kernel = match args.get("kernel").unwrap_or("jackson") {
        "jackson" => KernelType::Jackson,
        "lorentz" => KernelType::Lorentz { lambda: args.get_or("lambda", 4.0)? },
        "fejer" => KernelType::Fejer,
        "dirichlet" => KernelType::Dirichlet,
        "jacobi" => KernelType::Jacobi {
            alpha: args.get_or("alpha", 0.0)?,
            beta: args.get_or("beta", 0.0)?,
        },
        other => return Err(CmdError::Other(format!("unknown kernel '{other}'"))),
    };
    let bounds: BoundsMethod = match args.get("bounds") {
        None => BoundsMethod::Gershgorin,
        Some(v) => v.parse().map_err(CmdError::Kpm)?,
    };
    let mut params = KpmParams::new(args.get_or("moments", 256)?)
        .with_random_vectors(args.get_or("random", 14)?, args.get_or("sets", 2)?)
        .with_seed(args.get_or("seed", 42u64)?)
        .with_kernel(kernel)
        .with_bounds(bounds);
    if let Some(eps) = resolution_arg(args)? {
        // `--resolution EPS` picks the moment count for the requested energy
        // resolution from the *actual* spectral half-width — the whole point
        // of tighter bounds is that this N shrinks with them.
        let b = kpm::bounds::resolve(&h, params.bounds)?;
        let n =
            kpm::moments_for_resolution(params.kernel, b.padded(params.padding).a_minus(), eps)?;
        params = KpmParams::new(n)
            .with_random_vectors(params.num_random, params.num_realizations)
            .with_seed(params.seed)
            .with_kernel(params.kernel)
            .with_bounds(params.bounds);
        obs::counter_add("kpm.bounds.n_moments", n as u64);
    }
    Ok(Workload { h, params })
}

/// Parses `--resolution EPS` (target energy resolution; selects `N`).
fn resolution_arg(args: &Args) -> Result<Option<f64>, CmdError> {
    match args.get("resolution") {
        None => Ok(None),
        Some(v) => {
            v.parse::<f64>().ok().filter(|e| e.is_finite() && *e > 0.0).map(Some).ok_or_else(|| {
                CmdError::Args(ArgError::BadValue {
                    key: "resolution".into(),
                    value: v.into(),
                    expected: "a positive energy",
                })
            })
        }
    }
}

/// Builds the shard engine selected by `--local-workers` / `--workers`, if
/// any. A numeric `--workers` keeps its pre-existing meaning (thread-pool
/// size for batch/serve) and selects no engine; a non-numeric value is a
/// comma-separated list of `kpm worker` TCP addresses.
pub fn shard_engine(args: &Args) -> Result<Option<kpm_shard::ShardedEngine>, CmdError> {
    let local = match args.get("local-workers") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                return Err(CmdError::Other(format!(
                    "--local-workers {v}: expected a positive integer"
                )))
            }
        },
    };
    let tcp: Option<Vec<String>> = match args.get("workers") {
        Some(v) if v.parse::<usize>().is_err() => {
            Some(v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect())
        }
        _ => None,
    };
    match (local, tcp) {
        (Some(_), Some(_)) => Err(CmdError::Other(
            "--local-workers and --workers ADDR,... are mutually exclusive".into(),
        )),
        (Some(n), None) => Ok(Some(kpm_shard::ShardedEngine::local(n))),
        (None, Some(addrs)) if addrs.is_empty() => {
            Err(CmdError::Other("--workers: no addresses given".into()))
        }
        (None, Some(addrs)) => Ok(Some(kpm_shard::ShardedEngine::tcp(addrs))),
        (None, None) => Ok(None),
    }
}

/// Renders the common options as a serve job spec, so the sharded dos/ldos
/// paths reuse `JobSpec` parsing/validation and its canonical wire form.
/// Options left at their defaults are omitted — CLI and job-line defaults
/// are identical.
fn shard_job_spec(args: &Args) -> Result<kpm_serve::JobSpec, CmdError> {
    let mut parts: Vec<String> = Vec::new();
    for key in [
        "lattice", "bc", "hopping", "disorder", "dseed", "format", "moments", "random", "sets",
        "seed", "device", "bounds",
    ] {
        if let Some(v) = args.get(key) {
            parts.push(format!("{key}={v}"));
        }
    }
    if let Some(kernel) = args.get("kernel") {
        if kernel == "lorentz" {
            parts.push(format!("kernel=lorentz:{}", args.get_or("lambda", 4.0)?));
        } else if kernel == "jacobi" {
            parts.push(format!(
                "kernel=jacobi:{},{}",
                args.get_or("alpha", 0.0)?,
                args.get_or("beta", 0.0)?
            ));
        } else {
            parts.push(format!("kernel={kernel}"));
        }
    }
    kpm_serve::JobSpec::parse(&parts.join(" ")).map_err(|e| match e {
        kpm_serve::JobParseError::Spec(s) => CmdError::Spec(s),
        other => CmdError::Other(other.to_string()),
    })
}

/// `--resolution EPS` for the sharded paths: `a_minus` is the padded
/// half-width the merge will reconstruct against, so the selected `N`
/// matches what an unsharded run with the same bounds mode would pick.
fn apply_resolution_sharded(
    args: &Args,
    spec: &mut kpm_serve::JobSpec,
    a_minus: f64,
) -> Result<(), CmdError> {
    if let Some(eps) = resolution_arg(args)? {
        let n = kpm::moments_for_resolution(spec.kpm_params().kernel, a_minus, eps)?;
        spec.num_moments = n;
        obs::counter_add("kpm.bounds.n_moments", n as u64);
    }
    Ok(())
}

/// Label for distributed-run reports.
fn worker_set_label(engine: &kpm_shard::ShardedEngine) -> String {
    match engine.workers() {
        kpm_shard::WorkerSet::Local(n) => format!("{n} local worker(s)"),
        kpm_shard::WorkerSet::Tcp(addrs) => format!("{} tcp worker(s)", addrs.len()),
    }
}

/// `kpm dos` over a worker fleet: same moments, same CSV bytes.
fn dos_sharded(args: &Args, engine: &kpm_shard::ShardedEngine) -> Result<String, CmdError> {
    let mut spec = shard_job_spec(args)?;
    let (a_plus, a_minus) = kpm_shard::ShardJob::Dos(spec.clone()).bounds()?;
    apply_resolution_sharded(args, &mut spec, a_minus)?;
    let job = kpm_shard::ShardJob::Dos(spec.clone());
    let stats = engine.run_job(&job)?.into_stats().expect("dos jobs merge to stats");
    let dos = DosEstimator::new(spec.kpm_params()).reconstruct(stats, a_plus, a_minus)?;
    let dim = spec.build_matrix().dim();
    let mut report = dos_report(
        &dos,
        &format!("DoS of a {dim} x {dim} Hamiltonian (distributed: {})", worker_set_label(engine)),
    );
    if let Some(path) = maybe_write_csv(
        args,
        "energy,rho",
        dos.energies.iter().zip(&dos.rho).map(|(e, r)| format!("{e},{r}")),
    )? {
        let _ = writeln!(report, "  wrote {path}");
    }
    Ok(report)
}

/// `kpm ldos` over a worker fleet.
fn ldos_sharded(args: &Args, engine: &kpm_shard::ShardedEngine) -> Result<String, CmdError> {
    let site: usize = args.require("site")?;
    let mut spec = shard_job_spec(args)?;
    let (a_plus, a_minus) = kpm_shard::ShardJob::Ldos { spec: spec.clone(), site }.bounds()?;
    apply_resolution_sharded(args, &mut spec, a_minus)?;
    let job = kpm_shard::ShardJob::Ldos { spec: spec.clone(), site };
    let stats = engine.run_job(&job)?.into_stats().expect("ldos jobs merge to stats");
    let ldos = LdosEstimator::new(spec.kpm_params(), site).reconstruct(stats, a_plus, a_minus)?;
    let mut report = dos_report(
        &ldos,
        &format!("LDoS at site {site} (distributed: {})", worker_set_label(engine)),
    );
    if let Some(path) = maybe_write_csv(
        args,
        "energy,rho_local",
        ldos.energies.iter().zip(&ldos.rho).map(|(e, r)| format!("{e},{r}")),
    )? {
        let _ = writeln!(report, "  wrote {path}");
    }
    Ok(report)
}

/// `kpm worker` — serve shard computations over TCP until killed (or after
/// one connection with `--once`, the test/CI mode).
pub fn worker(args: &Args) -> Result<String, CmdError> {
    let listen = args.get("listen").unwrap_or("127.0.0.1:7070");
    let once = args.flag("once");
    let cap: usize = args.get_or("inventory-cap", kpm_shard::inventory::DEFAULT_ROW_CAP)?;
    kpm_shard::run_tcp_worker_with(listen, once, cap, |addr| {
        eprintln!("kpm worker listening on {addr}");
    })?;
    Ok("worker: served one connection, exiting\n".to_string())
}

fn maybe_write_csv(
    args: &Args,
    header: &str,
    rows: impl Iterator<Item = String>,
) -> Result<Option<String>, CmdError> {
    let Some(path) = args.get("out") else { return Ok(None) };
    let mut s = String::from(header);
    s.push('\n');
    for r in rows {
        s.push_str(&r);
        s.push('\n');
    }
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, s)?;
    Ok(Some(path.to_string()))
}

fn dos_report(dos: &kpm::Dos, label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{label}");
    let _ = writeln!(out, "  grid points : {}", dos.len());
    let _ = writeln!(
        out,
        "  band        : [{:.4}, {:.4}]",
        dos.energies[0],
        dos.energies.last().unwrap()
    );
    let _ = writeln!(out, "  integral    : {:.5}", dos.integrate());
    let _ = writeln!(
        out,
        "  peak        : rho = {:.4} at E = {:.4}",
        { dos.rho.iter().cloned().fold(0.0f64, f64::max) },
        dos.peak_energy()
    );
    out
}

/// `kpm dos`.
pub fn dos(args: &Args) -> Result<String, CmdError> {
    if let Some(engine) = shard_engine(args)? {
        return dos_sharded(args, &engine);
    }
    let device_spec: kpm::DeviceSpec =
        args.get("device").unwrap_or("host").parse().map_err(CmdError::Kpm)?;
    let w = workload(args)?;
    let (dos, device_lines) = match device_spec {
        kpm::DeviceSpec::Host => (DosEstimator::new(w.params).compute(&w.h)?, None),
        sim => {
            // Route through the Device backend: functional results are
            // bitwise identical to the host path, plus a modeled clock
            // from the event pipeline.
            let device = sim.build();
            let run = device.submit(kpm::DeviceOp::Sparse(&w.h), &w.params)?;
            let dos = DosEstimator::new(w.params.clone()).reconstruct(
                run.moments,
                run.a_plus,
                run.a_minus,
            )?;
            let caps = device.caps();
            let mut lines = format!("  device      : {sim} ({} instance(s))\n", caps.instances);
            if let Some(secs) = run.clock.modeled_secs() {
                let _ = writeln!(lines, "  modeled time: {secs:.6} s (event pipeline)");
            }
            (dos, Some(lines))
        }
    };
    let mut report = dos_report(
        &dos,
        &format!(
            "DoS of a {} x {} Hamiltonian ({} stored entries, {} format)",
            w.h.nrows(),
            w.h.ncols(),
            w.h.nnz(),
            w.h.format_name()
        ),
    );
    if let Some(lines) = device_lines {
        report.push_str(&lines);
    }
    if let Some(path) = maybe_write_csv(
        args,
        "energy,rho",
        dos.energies.iter().zip(&dos.rho).map(|(e, r)| format!("{e},{r}")),
    )? {
        let _ = writeln!(report, "  wrote {path}");
    }
    Ok(report)
}

/// `kpm ldos`.
pub fn ldos(args: &Args) -> Result<String, CmdError> {
    if let Some(engine) = shard_engine(args)? {
        return ldos_sharded(args, &engine);
    }
    let w = workload(args)?;
    let site: usize = args.require("site")?;
    let ldos = LdosEstimator::new(w.params, site).compute(&w.h)?;
    let mut report = dos_report(&ldos, &format!("LDoS at site {site}"));
    if let Some(path) = maybe_write_csv(
        args,
        "energy,rho_local",
        ldos.energies.iter().zip(&ldos.rho).map(|(e, r)| format!("{e},{r}")),
    )? {
        let _ = writeln!(report, "  wrote {path}");
    }
    Ok(report)
}

/// `kpm evolve`.
pub fn evolve(args: &Args) -> Result<String, CmdError> {
    let w = workload(args)?;
    let time: f64 = args.get_or("time", 10.0)?;
    let steps: usize = args.get_or("steps", 5)?;
    if steps == 0 {
        return Err(CmdError::Other("--steps must be positive".into()));
    }
    let site: usize = args.get_or("site", w.h.nrows() / 2)?;
    if site >= w.h.nrows() {
        return Err(CmdError::Other(format!("--site {site} out of range")));
    }
    let bounds = kpm::bounds::resolve(&w.h, w.params.bounds)?;
    let prop = Propagator::new(&w.h, bounds, 1e-10)?;
    let mut re = vec![0.0; w.h.nrows()];
    re[site] = 1.0;
    let mut psi = ComplexState::from_real(re);

    let mut report = format!("evolving |site {site}> for t = {time} in {steps} steps\n");
    let _ = writeln!(report, "  {:>8} {:>12} {:>12}", "t", "return_prob", "norm");
    let dt = time / steps as f64;
    for k in 0..=steps {
        let p_return = psi.re[site] * psi.re[site] + psi.im[site] * psi.im[site];
        let _ = writeln!(
            report,
            "  {:>8.3} {:>12.6} {:>12.8}",
            k as f64 * dt,
            p_return,
            psi.norm_sqr()
        );
        if k < steps {
            psi = prop.evolve(&psi, dt);
        }
    }
    if let Some(path) = maybe_write_csv(
        args,
        "site,prob",
        psi.density().iter().enumerate().map(|(i, p)| format!("{i},{p}")),
    )? {
        let _ = writeln!(report, "  wrote final density to {path}");
    }
    Ok(report)
}

/// `kpm spectral` — momentum-resolved A(k, omega) on a chain.
pub fn spectral(args: &Args) -> Result<String, CmdError> {
    let spec = LatticeSpec::parse(args.get("lattice").unwrap_or("chain:128"))?;
    let LatticeSpec::Chain(l) = spec else {
        return Err(CmdError::Other("spectral currently supports chain:L lattices".into()));
    };
    let w = workload(args)?; // rebuilds the same chain with common options
    let k_count: usize = args.get_or("momenta", 8)?;
    if k_count == 0 || k_count > l {
        return Err(CmdError::Other(format!("--momenta must be in 1..={l}")));
    }
    let ks: Vec<usize> = (0..k_count).map(|i| i * l / (2 * k_count)).collect();
    let spectra = kpm::spectral::chain_spectral_function(&w.h, l, &ks, &w.params)?;
    let mut report = format!("A(k, omega) on a {l}-site chain:\n");
    let _ = writeln!(report, "  {:>6} {:>10} {:>12}", "k_idx", "k/pi", "peak E");
    for sp in &spectra {
        let _ = writeln!(
            report,
            "  {:>6} {:>10.4} {:>12.4}",
            sp.k_index,
            2.0 * sp.k_index as f64 / l as f64,
            sp.peak()
        );
    }
    if let Some(path) = maybe_write_csv(
        args,
        "k_index,energy,a",
        spectra.iter().flat_map(|sp| {
            let k = sp.k_index;
            sp.a.energies
                .iter()
                .zip(&sp.a.rho)
                .map(move |(e, r)| format!("{k},{e},{r}"))
                .collect::<Vec<_>>()
        }),
    )? {
        let _ = writeln!(report, "  wrote {path}");
    }
    Ok(report)
}

/// `kpm tune`: calibrate the execution profile for the lattice's operator
/// shape (timed probe sweep, persisted to the profile store), then the
/// modeled block-size sweep for the simulated device.
pub fn tune(args: &Args) -> Result<String, CmdError> {
    // Part 1 — real-machine calibration. `kpm tune` persists by default
    // (that's its job); every other command stays memory-only unless
    // `--profile-store` says otherwise.
    if args.get("profile-store").is_none() {
        set_profile_dir(Some(std::path::PathBuf::from("results/profiles")));
    }
    let Workload { h, params } = workload(args)?;
    let chunks = realization_chunk_count(&params, 0..params.total_realizations());
    let threads = kpm::exec::effective_threads();
    let sweep_t0 = std::time::Instant::now();
    let profile = ensure_profile(&h, chunks);
    let sweep = sweep_t0.elapsed();
    let plan = profile.plan(threads);
    let mut report = format!(
        "execution profile (D = {}, entries = {}, chunks = {}, threads = {}):\n",
        profile.shape.dim, profile.shape.entries, profile.shape.chunks, profile.shape.threads
    );
    let _ = writeln!(report, "  {:>10} {:016x}", "key", profile.shape.key());
    let _ = writeln!(
        report,
        "  {:>10} {} ({:?})  [{}{}]",
        "plan",
        plan.name(),
        plan,
        profile.origin.as_str(),
        if profile.probe_nanos > 0 {
            format!(", probe {:.3} ms", profile.probe_nanos as f64 / 1e6)
        } else {
            String::new()
        },
    );
    let _ = writeln!(report, "  {:>10} {} (advisory)", "variant", profile.variant_hint.name());
    let _ = writeln!(
        report,
        "  {:>10} {}",
        "store",
        kpm::tune::store().dir().map_or("memory only".into(), |d| d.display().to_string()),
    );
    let _ = writeln!(report, "  sweep took {:.3} ms\n", sweep.as_secs_f64() * 1e3);

    // Part 2 — the modeled device sweep (the paper's BLOCK_SIZE table).
    let spec = LatticeSpec::parse(args.get("lattice").unwrap_or("cubic:10,10,10"))?;
    let d = spec.num_sites();
    let n: usize = args.get_or("moments", 1024)?;
    let realizations: usize = args.get_or("realizations", 1792)?;
    let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let stored = 7 * d; // paper-style sparse estimate
    let shape = engine.shape_for(d, stored, false, n, realizations);
    let result = tune_block_size(engine.device().spec(), &shape, 0.2, None);
    let _ = writeln!(
        report,
        "block-size sweep (D = {d}, N = {n}, S*R = {realizations}, thread-per-realization):"
    );
    let _ = writeln!(report, "  {:>10} {:>12}", "BLOCK_SIZE", "modeled (s)");
    for p in &result.points {
        let marker = if p.block_size == result.best { "  <= best" } else { "" };
        let _ = writeln!(report, "  {:>10} {:>12.4}{marker}", p.block_size, p.time.as_secs_f64());
    }
    Ok(report)
}

/// `kpm estimate`.
pub fn estimate(args: &Args) -> Result<String, CmdError> {
    let spec = LatticeSpec::parse(args.get("lattice").unwrap_or("cubic:10,10,10"))?;
    let d = spec.num_sites();
    let n: usize = args.get_or("moments", 1024)?;
    let realizations: usize = args.get_or("realizations", 1792)?;
    let dense = args.get("storage").unwrap_or("sparse") == "dense";
    let stored = if dense { d * d } else { 7 * d };

    let w =
        kpm::workload::KpmWorkload { dim: d, stored_entries: stored, num_moments: n, realizations };
    // CPU model.
    let cpu_spec = kpm_streamsim::CpuSpec::core_i7_930();
    let mut clock = kpm_streamsim::HostClock::new();
    let conv = |p: kpm::workload::PhaseProfile| kpm_streamsim::MemTraffic {
        flops: p.flops,
        bytes: p.bytes,
        working_set_bytes: p.working_set_bytes,
    };
    let rng = clock.charge(&cpu_spec, &conv(w.rng_profile())).as_secs_f64();
    let mv = clock.charge(&cpu_spec, &conv(w.matvec_profile())).as_secs_f64();
    let cd = clock.charge(&cpu_spec, &conv(w.combine_dot_profile())).as_secs_f64();
    let cpu = realizations as f64 * (rng + mv * (n as f64 - 1.0) + cd * n as f64);

    let mut report = format!(
        "modeled times (D = {d}, {} storage, N = {n}, S*R = {realizations}):\n",
        if dense { "dense" } else { "sparse" }
    );
    let _ = writeln!(report, "  CPU (Core i7 930 model)            : {cpu:.3} s");
    for (label, mapping) in [
        ("GPU, thread-per-realization (paper)", Mapping::ThreadPerRealization),
        ("GPU, block-per-realization (ours)  ", Mapping::BlockPerRealization),
    ] {
        let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050()).with_mapping(mapping);
        let shape = engine.shape_for(d, stored, dense, n, realizations);
        // Overlap-off event pipeline: reproduces the retired analytic model
        // bitwise (pinned in kpm-streamsim's tests).
        let gpu = kpm_streamsim::MomentRunPlan::new(shape)
            .with_overlap(false)
            .total(engine.device().spec(), 0.2)
            .as_secs_f64();
        let _ = writeln!(report, "  {label}: {gpu:.3} s  (speedup {:.2}x)", cpu / gpu);
    }
    Ok(report)
}

/// `kpm bounds [<lattice>]` — the spectral-bounds inspector: what each
/// provider reports for the lattice, how much tighter Lanczos is than the
/// Gershgorin discs, and the moment counts they imply at a target
/// resolution (`--resolution EPS`, default 0.05).
pub fn bounds(args: &Args) -> Result<String, CmdError> {
    let lattice = args.get("lattice").unwrap_or("cubic:10,10,10").to_string();
    let w = workload(args)?;
    let steps = match w.params.bounds {
        BoundsMethod::Lanczos { steps } => steps,
        _ => kpm::DEFAULT_LANCZOS_STEPS,
    };
    let g = kpm::bounds::resolve(&w.h, BoundsMethod::Gershgorin)?;
    let l = kpm::bounds::resolve(&w.h, BoundsMethod::Lanczos { steps })?;

    let mut report = format!(
        "spectral bounds for {lattice} ({} x {} Hamiltonian, {} stored entries):\n",
        w.h.nrows(),
        w.h.ncols(),
        w.h.nnz()
    );
    let _ =
        writeln!(report, "  {:<14} {:>12} {:>12} {:>12}", "method", "lower", "upper", "a_minus");
    let pad = w.params.padding;
    for (label, b) in
        [("gershgorin".to_string(), g), (BoundsMethod::Lanczos { steps }.to_string(), l)]
    {
        let _ = writeln!(
            report,
            "  {label:<14} {:>12.6} {:>12.6} {:>12.6}",
            b.lower,
            b.upper,
            b.padded(pad).a_minus()
        );
    }
    if let BoundsMethod::Explicit { .. } = w.params.bounds {
        let m = kpm::bounds::resolve(&w.h, w.params.bounds)?;
        let _ = writeln!(
            report,
            "  {:<14} {:>12.6} {:>12.6} {:>12.6}",
            w.params.bounds.to_string(),
            m.lower,
            m.upper,
            m.padded(pad).a_minus()
        );
    }
    let _ = writeln!(
        report,
        "  tightening  : {:.3}x narrower half-width",
        g.width() / l.width().max(f64::MIN_POSITIVE)
    );

    let eps = resolution_arg(args)?.unwrap_or(0.05);
    let n_g = kpm::moments_for_resolution(w.params.kernel, g.padded(pad).a_minus(), eps)?;
    let n_l = kpm::moments_for_resolution(w.params.kernel, l.padded(pad).a_minus(), eps)?;
    let _ = writeln!(report, "  moments for resolution {eps} ({:?} kernel):", w.params.kernel);
    let _ = writeln!(report, "    gershgorin  : N = {n_g}");
    let _ = writeln!(
        report,
        "    lanczos:{steps:<4}: N = {n_l}  ({:.3}x fewer moments)",
        n_g as f64 / n_l as f64
    );
    Ok(report)
}

/// Dispatches a subcommand.
///
/// # Errors
/// [`CmdError`] from parsing or execution.
pub fn run(command: &str, args: &Args) -> Result<String, CmdError> {
    run_with_positionals(command, args, &[])
}

/// Dispatches a subcommand, passing positional arguments to the commands
/// that take them (`batch`); every other command rejects positionals.
///
/// With `--trace FILE`, the whole run executes inside a trace session: the
/// dispatch is wrapped in a `cli.command` span (labeled with the
/// subcommand), and the finished report — per-phase spans plus any ambient
/// counters — is written to `FILE` as versioned JSON whether the command
/// succeeds or fails.
///
/// # Errors
/// [`CmdError`] from parsing or execution (trace-file write failures map to
/// [`CmdError::Io`]).
pub fn run_with_positionals(
    command: &str,
    args: &Args,
    positionals: &[String],
) -> Result<String, CmdError> {
    let Some(trace_path) = args.get("trace") else {
        return dispatch(command, args, positionals);
    };
    let trace_path = std::path::PathBuf::from(trace_path);
    let handle = TraceHandle::begin();
    let result = {
        let _span = obs::span_labeled("cli.command", command);
        dispatch(command, args, positionals)
    };
    let mut report = handle.finish();
    report.command = command.to_string();
    report.write_json(&trace_path)?;
    result
}

/// Applies the process-global execution-plan options (`--exec`,
/// `--threads`, `--precision`, `--profile-store`, `--no-tune`) before the
/// command runs. Validation happens before any mutation, so a bad value
/// leaves the policy untouched.
fn apply_exec_options(args: &Args) -> Result<(), CmdError> {
    let policy = match args.get("exec") {
        None => None,
        Some(v) => Some(
            v.parse::<ExecPolicy>().map_err(|e: String| CmdError::Other(format!("--exec: {e}")))?,
        ),
    };
    let precision = match args.get("precision") {
        None => None,
        Some(v) => Some(
            v.parse::<MomentPrecision>()
                .map_err(|e: String| CmdError::Other(format!("--precision: {e}")))?,
        ),
    };
    let threads: usize = args.get_or("threads", 0)?;
    if let Some(p) = policy {
        set_exec_policy(p);
    }
    if threads > 0 {
        set_thread_budget(threads);
    }
    if let Some(p) = precision {
        set_moments_precision(p);
    }
    if args.flag("no-tune") {
        set_tuning_enabled(false);
    }
    match args.get("profile-store") {
        None => {}
        Some("none") => set_profile_dir(None),
        Some(dir) => set_profile_dir(Some(std::path::PathBuf::from(dir))),
    }
    Ok(())
}

fn dispatch(command: &str, args: &Args, positionals: &[String]) -> Result<String, CmdError> {
    apply_exec_options(args)?;
    if command == "batch" {
        return crate::batch::batch(args, positionals);
    }
    if command == "submit" {
        return crate::batch::submit(args, positionals);
    }
    if command == "fleet" {
        return crate::fleet::fleet(args, positionals);
    }
    if command == "tune" || command == "bounds" {
        // `kpm tune <lattice>` / `kpm bounds <lattice>` — the positional is
        // shorthand for `--lattice` and wins over it when both are given.
        let cmd: fn(&Args) -> Result<String, CmdError> =
            if command == "tune" { tune } else { bounds };
        if let Some(extra) = positionals.get(1) {
            return Err(CmdError::Args(ArgError::UnexpectedPositional(extra.clone())));
        }
        if let Some(lattice) = positionals.first() {
            let mut with_lattice = args.clone();
            with_lattice.set("lattice", lattice);
            return cmd(&with_lattice);
        }
        return cmd(args);
    }
    if let Some(p) = positionals.first() {
        return Err(CmdError::Args(ArgError::UnexpectedPositional(p.clone())));
    }
    match command {
        "dos" => dos(args),
        "ldos" => ldos(args),
        "evolve" => evolve(args),
        "spectral" => spectral(args),
        "serve" => crate::batch::serve(args),
        "estimate" => estimate(args),
        "worker" => worker(args),
        "help" => Ok(USAGE.to_string()),
        other => Err(CmdError::Other(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn dos_on_small_lattice() {
        let a = args(&["--lattice", "chain:64", "--moments", "64", "--sets", "1"]);
        let report = dos(&a).unwrap();
        assert!(report.contains("integral"), "{report}");
        assert!(report.contains("64 x 64"));
    }

    #[test]
    fn dos_format_flag_selects_backend_without_changing_physics() {
        let base = ["--lattice", "cubic:4,4,4", "--moments", "64", "--sets", "1"];
        let reports: Vec<String> = ["csr", "ell", "stencil", "auto"]
            .iter()
            .map(|f| {
                let mut words: Vec<&str> = base.to_vec();
                words.extend_from_slice(&["--format", f]);
                dos(&args(&words)).unwrap()
            })
            .collect();
        assert!(reports[0].contains("csr format"), "{}", reports[0]);
        assert!(reports[1].contains("ell format"), "{}", reports[1]);
        assert!(reports[2].contains("stencil format"), "{}", reports[2]);
        // Regular cubic rows: auto must pick ELL.
        assert!(reports[3].contains("ell format"), "{}", reports[3]);
        // Identical physics: reports differ only in the format label.
        let strip = |r: &str| {
            r.replace("csr format", "X").replace("ell format", "X").replace("stencil format", "X")
        };
        assert_eq!(strip(&reports[0]), strip(&reports[1]));
        assert_eq!(strip(&reports[0]), strip(&reports[2]));
    }

    /// The tentpole CLI criterion: `--device sim[:n]` routes the run
    /// through the event-pipeline device and reproduces the host numbers
    /// bitwise — same report body, same CSV bytes — plus a modeled clock.
    #[test]
    fn dos_device_sim_matches_host_bitwise() {
        let dir = std::env::temp_dir().join("kpm_cli_device_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |device: Option<&str>| {
            let path = dir.join(format!("dos_{}.csv", device.unwrap_or("host")));
            let path_s = path.to_str().unwrap().to_string();
            let mut words =
                vec!["--lattice", "chain:48", "--moments", "32", "--sets", "1", "--out", &path_s];
            if let Some(d) = device {
                words.extend_from_slice(&["--device", d]);
            }
            let report = dos(&args(&words)).unwrap();
            (report, std::fs::read(&path).unwrap())
        };
        let (host_report, host_csv) = run(None);
        for d in ["sim", "sim:2", "sim:4"] {
            let (sim_report, sim_csv) = run(Some(d));
            assert_eq!(sim_csv, host_csv, "--device {d} must reproduce host CSV bytes");
            assert!(sim_report.contains("modeled time"), "{sim_report}");
            assert!(sim_report.contains(&format!("device      : {d} ")), "{sim_report}");
            // The report is the host report plus the device lines.
            let strip = |r: &str| {
                r.lines()
                    .filter(|l| {
                        !l.contains("device      :")
                            && !l.contains("modeled time")
                            && !l.contains("wrote ")
                    })
                    .map(|l| format!("{l}\n"))
                    .collect::<String>()
            };
            assert_eq!(strip(&sim_report), strip(&host_report), "--device {d} changed the physics");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn dos_rejects_bad_device() {
        for bad in ["gpu", "sim:0", "sim:x"] {
            let a = args(&["--lattice", "chain:16", "--moments", "16", "--device", bad]);
            let err = dos(&a).unwrap_err();
            assert!(matches!(err, CmdError::Kpm(_)), "--device {bad}: {err}");
        }
    }

    /// `--device` flows into the sharded job spec (and stays bitwise
    /// identical there — pinned in kpm-shard's tests).
    #[test]
    fn shard_job_spec_carries_device() {
        let a = args(&["--lattice", "chain:16", "--device", "sim:4"]);
        let spec = shard_job_spec(&a).unwrap();
        assert_eq!(spec.device, kpm::DeviceSpec::Sim { devices: 4 });
        assert!(spec.canonical().contains("device=sim:4"), "{}", spec.canonical());
    }

    #[test]
    fn dos_rejects_unknown_format() {
        let a = args(&["--lattice", "chain:8", "--format", "coo"]);
        let err = dos(&a).unwrap_err();
        assert!(err.to_string().contains("unknown matrix format"), "{err}");
    }

    #[test]
    fn ldos_requires_site() {
        let a = args(&["--lattice", "chain:16", "--moments", "32"]);
        assert!(matches!(ldos(&a), Err(CmdError::Args(ArgError::Required(_)))));
        let a = args(&["--lattice", "chain:16", "--moments", "32", "--site", "3"]);
        assert!(ldos(&a).unwrap().contains("site 3"));
    }

    #[test]
    fn evolve_reports_conserved_norm() {
        let a = args(&["--lattice", "chain:32", "--time", "4", "--steps", "2"]);
        let report = evolve(&a).unwrap();
        // Norm column stays 1.00000000.
        assert!(report.matches("1.00000000").count() >= 3, "{report}");
    }

    #[test]
    fn evolve_validates_inputs() {
        let a = args(&["--lattice", "chain:8", "--steps", "0"]);
        assert!(evolve(&a).is_err());
        let a = args(&["--lattice", "chain:8", "--site", "99"]);
        assert!(evolve(&a).is_err());
    }

    #[test]
    fn spectral_reports_band_dispersion() {
        let a = args(&["--lattice", "chain:32", "--moments", "64", "--momenta", "4"]);
        let report = spectral(&a).unwrap();
        assert!(report.contains("peak E"), "{report}");
        assert_eq!(report.lines().count(), 6, "{report}");
        // k = 0 peak near the band bottom -2.
        let k0_line = report.lines().nth(2).unwrap();
        let peak: f64 = k0_line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((peak + 2.0).abs() < 0.3, "k=0 peak {peak}");
    }

    #[test]
    fn spectral_rejects_non_chain() {
        let a = args(&["--lattice", "square:4,4"]);
        assert!(spectral(&a).is_err());
        let a = args(&["--lattice", "chain:16", "--momenta", "0"]);
        assert!(spectral(&a).is_err());
    }

    /// The tune tests mutate the process-global profile store; serialize
    /// them so the directory/None settings don't race.
    static TUNE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn tune_lists_candidates_and_best() {
        let _guard = TUNE_LOCK.lock().unwrap();
        let a = args(&["--moments", "128", "--profile-store", "none"]);
        apply_exec_options(&a).unwrap();
        let report = tune(&a).unwrap();
        assert!(report.contains("<= best"), "{report}");
        assert!(report.contains("BLOCK_SIZE"));
        // The calibration half reports the measured profile and its plan.
        assert!(report.contains("execution profile"), "{report}");
        assert!(report.contains("plan"), "{report}");
        kpm::tune::set_profile_dir(None);
    }

    #[test]
    fn tune_accepts_a_positional_lattice() {
        let _guard = TUNE_LOCK.lock().unwrap();
        let a = args(&["--moments", "32", "--profile-store", "none"]);
        apply_exec_options(&a).unwrap();
        let report = run_with_positionals("tune", &a, &["chain:700".to_string()]).unwrap();
        assert!(report.contains("D = 700"), "{report}");
        // A second positional is a usage error, not silently dropped.
        let extra = ["chain:700".to_string(), "oops".to_string()];
        assert!(run_with_positionals("tune", &a, &extra).is_err());
        kpm::tune::store().clear_memory();
        kpm::tune::set_profile_dir(None);
    }

    #[test]
    fn tune_persists_profile_to_the_store_dir() {
        let _guard = TUNE_LOCK.lock().unwrap();
        kpm::tune::store().clear_memory();
        let dir = std::env::temp_dir().join(format!("kpm-cli-tune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = args(&[
            "--lattice",
            "cubic:10,10,10",
            "--moments",
            "64",
            "--profile-store",
            dir.to_str().unwrap(),
        ]);
        apply_exec_options(&a).unwrap();
        let report = tune(&a).unwrap();
        assert!(report.contains(dir.to_str().unwrap()), "{report}");
        let profiles: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "profile"))
            .collect();
        assert_eq!(profiles.len(), 1, "expected one persisted profile");
        kpm::tune::set_profile_dir(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn estimate_reports_both_mappings() {
        let a = args(&["--moments", "256"]);
        let report = estimate(&a).unwrap();
        assert!(report.contains("paper"));
        assert!(report.contains("speedup"));
    }

    #[test]
    fn dispatch_and_usage() {
        assert!(run("help", &args(&[])).unwrap().contains("USAGE"));
        assert!(run("frobnicate", &args(&[])).is_err());
    }

    #[test]
    fn csv_output_written() {
        let dir = std::env::temp_dir().join("kpm_cli_test");
        let path = dir.join("dos.csv");
        let a = args(&[
            "--lattice",
            "chain:32",
            "--moments",
            "32",
            "--sets",
            "1",
            "--out",
            path.to_str().unwrap(),
        ]);
        let report = dos(&a).unwrap();
        assert!(report.contains("wrote"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("energy,rho\n"));
        assert!(content.lines().count() > 10);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn kernel_selection() {
        for k in ["jackson", "lorentz", "fejer", "dirichlet", "jacobi"] {
            let a = args(&["--lattice", "chain:16", "--moments", "16", "--kernel", k]);
            assert!(dos(&a).is_ok(), "kernel {k}");
        }
        let a = args(&["--lattice", "chain:16", "--kernel", "gibbs"]);
        assert!(dos(&a).is_err());
        // Jacobi(1/2, 1/2) *is* Jackson: identical reports.
        let jackson = dos(&args(&["--lattice", "chain:16", "--moments", "16"])).unwrap();
        let jacobi = dos(&args(&[
            "--lattice",
            "chain:16",
            "--moments",
            "16",
            "--kernel",
            "jacobi",
            "--alpha",
            "0.5",
            "--beta",
            "0.5",
        ]))
        .unwrap();
        assert_eq!(jackson, jacobi, "jacobi:0.5,0.5 must reproduce Jackson");
    }

    #[test]
    fn bounds_option_selects_provider() {
        // On a disordered chain the Lanczos window is strictly tighter than
        // the Gershgorin discs, so the reconstruction band shrinks.
        let base = ["--lattice", "chain:64", "--moments", "32", "--sets", "1", "--disorder", "6.0"];
        let run = |bounds: Option<&str>| {
            let mut words = base.to_vec();
            if let Some(b) = bounds {
                words.extend_from_slice(&["--bounds", b]);
            }
            dos(&args(&words)).unwrap()
        };
        let gersh = run(None);
        assert_eq!(gersh, run(Some("gershgorin")), "gershgorin is the default");
        let lanczos = run(Some("lanczos"));
        let band = |r: &str| {
            let line = r.lines().find(|l| l.contains("band")).unwrap().to_string();
            let lo: f64 = line.split(['[', ',']).nth(1).unwrap().trim().parse().unwrap();
            let hi: f64 = line.split([',', ']']).nth(1).unwrap().trim().parse().unwrap();
            hi - lo
        };
        assert!(band(&lanczos) < band(&gersh), "lanczos band must be tighter:\n{lanczos}\n{gersh}");
        // Manual bounds and bad grammar.
        assert!(run(Some("manual:-8,8")).contains("integral"));
        let mut words = base.to_vec();
        words.extend_from_slice(&["--bounds", "psychic"]);
        assert!(dos(&args(&words)).is_err());
    }

    #[test]
    fn resolution_autoselects_moments() {
        // Same target resolution, tighter bounds => fewer moments. Lanczos
        // on a disordered chain must pick a smaller N than Gershgorin.
        let n_of = |bounds: &str| {
            let a = args(&[
                "--lattice",
                "chain:64",
                "--disorder",
                "8.0",
                "--sets",
                "1",
                "--random",
                "2",
                "--resolution",
                "0.2",
                "--bounds",
                bounds,
            ]);
            workload(&a).unwrap().params.num_moments
        };
        let (n_g, n_l) = (n_of("gershgorin"), n_of("lanczos:48"));
        assert!(n_l < n_g, "lanczos N = {n_l} must beat gershgorin N = {n_g}");
        // Halving EPS doubles N (up to ceil rounding).
        let a = args(&["--lattice", "chain:64", "--disorder", "8.0", "--resolution", "0.1"]);
        let n_half = workload(&a).unwrap().params.num_moments;
        assert!(n_half >= 2 * n_g - 2, "eps/2: N {n_g} -> {n_half}");
        // The selected N drives a real run end to end.
        let a =
            args(&["--lattice", "chain:32", "--sets", "1", "--random", "2", "--resolution", "0.5"]);
        assert!(dos(&a).unwrap().contains("integral"));
        let a = args(&["--lattice", "chain:16", "--resolution", "zero"]);
        assert!(dos(&a).is_err(), "--resolution must be a positive number");
    }

    #[test]
    fn bounds_command_reports_providers_and_moment_counts() {
        let a = args(&["--lattice", "chain:48", "--disorder", "6.0", "--resolution", "0.1"]);
        let report = bounds(&a).unwrap();
        assert!(report.contains("gershgorin"), "{report}");
        assert!(report.contains("lanczos:64"), "{report}");
        assert!(report.contains("tightening"), "{report}");
        assert!(report.contains("fewer moments"), "{report}");
        // Positional lattice works like `kpm tune <lattice>`.
        let a = args(&["--disorder", "6.0"]);
        let report = run_with_positionals("bounds", &a, &["chain:32".to_string()]).unwrap();
        assert!(report.contains("32 x 32"), "{report}");
        let extra = ["chain:32".to_string(), "oops".to_string()];
        assert!(run_with_positionals("bounds", &a, &extra).is_err());
    }

    /// `--bounds` flows into the sharded job spec, and sharded runs remain
    /// byte-identical to unsharded ones under the non-default provider.
    #[test]
    fn shard_job_spec_carries_bounds_and_stays_bitwise() {
        let a = args(&["--lattice", "chain:16", "--bounds", "lanczos:24"]);
        let spec = shard_job_spec(&a).unwrap();
        assert_eq!(spec.bounds, BoundsMethod::Lanczos { steps: 24 });
        assert!(spec.canonical().contains("bounds=lanczos:24"), "{}", spec.canonical());

        let dir = std::env::temp_dir().join("kpm_cli_shard_bounds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |workers: Option<&str>| {
            let path = dir.join(format!("dos_{}.csv", workers.unwrap_or("plain")));
            let path_s = path.to_str().unwrap().to_string();
            let mut words = vec![
                "--lattice",
                "chain:48",
                "--disorder",
                "5.0",
                "--moments",
                "24",
                "--random",
                "3",
                "--sets",
                "2",
                "--seed",
                "11",
                "--bounds",
                "lanczos:32",
            ];
            if let Some(n) = workers {
                words.extend_from_slice(&["--local-workers", n]);
            }
            words.push("--out");
            words.push(&path_s);
            dos(&args(&words)).unwrap();
            std::fs::read(&path).unwrap()
        };
        let plain = run(None);
        for n in ["1", "3"] {
            assert_eq!(run(Some(n)), plain, "--local-workers {n} must match bytes under lanczos");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn seed_makes_dos_ldos_evolve_deterministic() {
        // Same seeds reproduce bit-for-bit for every command; `--seed` only
        // *changes* the answer where randomness enters (the stochastic trace
        // in dos), while `--dseed` re-rolls the disorder realization
        // everywhere.
        for (cmd, base) in [
            (dos as fn(&Args) -> Result<String, CmdError>, vec!["--lattice", "chain:32"]),
            (ldos, vec!["--lattice", "chain:32", "--site", "5"]),
            (evolve, vec!["--lattice", "chain:32", "--time", "2", "--steps", "2"]),
        ] {
            let run = |seed: &'static str, dseed: &'static str| {
                let mut words = base.clone();
                words.extend_from_slice(&["--moments", "32", "--sets", "1", "--disorder", "2.0"]);
                words.extend_from_slice(&["--seed", seed, "--dseed", dseed]);
                cmd(&args(&words)).unwrap()
            };
            assert_eq!(run("7", "3"), run("7", "3"), "same seeds must reproduce");
            assert_ne!(run("7", "3"), run("7", "4"), "different disorder seed must differ");
        }
        let dos_with_seed = |s: &'static str| {
            let a = args(&["--lattice", "chain:32", "--moments", "32", "--sets", "1", "--seed", s]);
            dos(&a).unwrap()
        };
        assert_ne!(dos_with_seed("7"), dos_with_seed("8"), "dos must respond to --seed");
    }

    #[test]
    fn exit_codes_are_distinct_per_variant() {
        let errors = [
            CmdError::Other("x".into()),
            CmdError::Args(ArgError::Required("k".into())),
            CmdError::Spec(crate::spec::LatticeSpec::parse("blob:3").unwrap_err()),
            CmdError::Kpm(KpmError::DegenerateSpectrum),
            CmdError::Io(std::io::Error::other("disk")),
            CmdError::Jobs { failed: 1, report: "r".into() },
            CmdError::Shard(kpm_shard::ShardError::Io("net".into())),
            CmdError::Net(kpm_net::NetError::Io("refused".into())),
            CmdError::Fleet(kpm_fleet::FleetError::Stopped),
        ];
        let codes: Vec<u8> = errors.iter().map(CmdError::exit_code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn fleet_errors_convert_and_exit_9() {
        for e in [
            kpm_fleet::FleetError::Journal("disk full".into()),
            kpm_fleet::FleetError::NoWorkers { pending: 2 },
            kpm_fleet::FleetError::Stopped,
        ] {
            let text = e.to_string();
            let cmd: CmdError = e.into();
            assert!(matches!(cmd, CmdError::Fleet(_)));
            assert_eq!(cmd.exit_code(), 9);
            assert_eq!(cmd.to_string(), text, "Display must pass through");
        }
    }

    #[test]
    fn shard_errors_convert_and_exit_7() {
        for e in [
            kpm_shard::ShardError::Io("refused".into()),
            kpm_shard::ShardError::Protocol("bad magic".into()),
            kpm_shard::ShardError::Job("bad spec".into()),
            kpm_shard::ShardError::Worker { shard: 1, message: "degenerate".into() },
            kpm_shard::ShardError::AllWorkersDead { pending: 3 },
            kpm_shard::ShardError::ShardFailed { shard: 0, attempts: 8 },
        ] {
            let text = e.to_string();
            let cmd: CmdError = e.into();
            assert!(matches!(cmd, CmdError::Shard(_)));
            assert_eq!(cmd.exit_code(), 7);
            assert_eq!(cmd.to_string(), text, "Display must pass through");
        }
    }

    #[test]
    fn net_errors_convert_and_exit_8() {
        for e in [
            kpm_net::NetError::Io("connection refused".into()),
            kpm_net::NetError::Protocol("bad magic".into()),
            kpm_net::NetError::Rejected { retry_after_ms: 50, reason: "queue full".into() },
            kpm_net::NetError::Server("step 1 failed".into()),
        ] {
            let text = e.to_string();
            let cmd: CmdError = e.into();
            assert!(matches!(cmd, CmdError::Net(_)));
            assert_eq!(cmd.exit_code(), 8);
            assert_eq!(cmd.to_string(), text, "Display must pass through");
        }
    }

    #[test]
    fn stream_and_serve_errors_convert_into_cmd_error() {
        let e: CmdError = kpm_stream::EngineError::Kpm(KpmError::DegenerateSpectrum).into();
        assert!(matches!(e, CmdError::Kpm(_)), "engine KPM errors keep exit code 4");
        assert_eq!(e.exit_code(), 4);
        let e: CmdError =
            kpm_stream::EngineError::Sim(kpm_streamsim::SimError::InvalidBuffer).into();
        assert_eq!(e.exit_code(), 1);
        let e: CmdError = kpm_serve::JobError::Panicked("boom".into()).into();
        assert!(e.to_string().contains("boom"));
        assert_eq!(e.exit_code(), 1);
    }

    // The trace session is process-global; tests that begin one serialize
    // on this lock.
    static TRACE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn trace_file_has_versioned_schema_with_nested_phase_spans() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());

        let dir = std::env::temp_dir().join("kpm_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let a = args(&[
            "--lattice",
            "chain:256",
            "--moments",
            "128",
            "--sets",
            "1",
            "--resolution",
            "0.05",
            "--trace",
            path.to_str().unwrap(),
        ]);
        let out = run_with_positionals("dos", &a, &[]).unwrap();
        assert!(out.contains("integral"), "{out}");
        assert!(!obs::enabled(), "tracing must be disabled after the run");

        let text = std::fs::read_to_string(&path).unwrap();
        let value = obs::json::parse(&text).expect("trace file must be valid JSON");
        assert_eq!(value.get("version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(value.get("command").and_then(|v| v.as_str()), Some("dos"));
        let wall = value.get("wall_us").and_then(|v| v.as_u64()).expect("wall_us");
        let spans = value.get("spans").and_then(|v| v.as_array()).expect("spans array");
        assert!(value.get("counters").and_then(|v| v.as_object()).is_some(), "counters object");

        // Every span carries the full field set, starts monotonically in
        // record order, and fits inside the session wall time.
        let mut prev_start = 0u64;
        for span in spans {
            for field in ["name", "start_us", "dur_us", "parent"] {
                assert!(span.get(field).is_some(), "span missing '{field}':\n{text}");
            }
            let start = span.get("start_us").unwrap().as_u64().unwrap();
            let dur = span.get("dur_us").unwrap().as_u64().unwrap();
            assert!(start >= prev_start, "start_us must be monotonic:\n{text}");
            assert!(start + dur <= wall, "span must end within the session:\n{text}");
            prev_start = start;
        }

        // The labeled root span encloses the per-phase spans.
        let name = |i: usize| spans[i].get("name").unwrap().as_str().unwrap();
        assert_eq!(name(0), "cli.command");
        assert_eq!(spans[0].get("detail").and_then(|v| v.as_str()), Some("dos"));
        assert!(spans[0].get("parent").unwrap().is_null());
        for phase in ["cli.workload", "kpm.rescale", "kpm.moments", "kpm.reconstruct"] {
            let idx = (0..spans.len())
                .find(|&i| name(i) == phase)
                .unwrap_or_else(|| panic!("missing span '{phase}':\n{text}"));
            // Walk the parent chain up to the root.
            let mut at = idx;
            while let Some(p) = spans[at].get("parent").unwrap().as_u64() {
                at = p as usize;
            }
            assert_eq!(at, 0, "'{phase}' must nest under cli.command:\n{text}");
        }

        // The bounds seam surfaces the chosen rescale window: a `kpm.bounds`
        // span labeled with the interval, plus the probe counter and the
        // `--resolution`-selected moment count.
        let bidx = (0..spans.len())
            .find(|&i| name(i) == "kpm.bounds")
            .unwrap_or_else(|| panic!("missing span 'kpm.bounds':\n{text}"));
        let detail = spans[bidx].get("detail").and_then(|v| v.as_str()).unwrap();
        assert!(detail.contains("a_plus="), "kpm.bounds detail: {detail}");
        assert!(detail.contains("a_minus="), "kpm.bounds detail: {detail}");
        let counters = value.get("counters").and_then(|v| v.as_object()).unwrap();
        let counter = |k: &str| {
            counters
                .iter()
                .find(|(name, _)| name == k)
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or_else(|| panic!("missing counter '{k}':\n{text}"))
        };
        assert!(counter("kpm.bounds.probe") >= 1, "{text}");
        assert!(counter("kpm.bounds.n_moments") >= 2, "{text}");

        // The recorded phases account for the bulk of the wall time (the
        // acceptance criterion is >= 90% for the paper workload; use a
        // conservative floor here so a tiny test lattice stays robust).
        let phase_total: u64 = spans
            .iter()
            .filter(|s| s.get("name").unwrap().as_str().unwrap().starts_with("kpm."))
            .map(|s| s.get("dur_us").unwrap().as_u64().unwrap())
            .sum();
        assert!(phase_total * 2 >= wall, "kpm.* spans cover {phase_total} of {wall} us:\n{text}");

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn jobs_error_displays_report_and_count() {
        let e = CmdError::Jobs { failed: 2, report: "table".into() };
        let text = e.to_string();
        assert!(text.contains("table"));
        assert!(text.contains("2 job(s) failed"));
    }

    #[test]
    fn positionals_rejected_outside_batch() {
        let pos = vec!["stray".to_string()];
        let e = run_with_positionals("dos", &args(&[]), &pos).unwrap_err();
        assert!(matches!(e, CmdError::Args(ArgError::UnexpectedPositional(_))));
    }

    #[test]
    fn shard_engine_selection_from_flags() {
        assert!(shard_engine(&args(&[])).unwrap().is_none(), "no flags, no engine");
        // Numeric --workers keeps its batch/serve thread-pool meaning.
        assert!(shard_engine(&args(&["--workers", "4"])).unwrap().is_none());
        let e = shard_engine(&args(&["--local-workers", "3"])).unwrap().unwrap();
        assert_eq!(*e.workers(), kpm_shard::WorkerSet::Local(3));
        let e = shard_engine(&args(&["--workers", "a:1, b:2"])).unwrap().unwrap();
        assert_eq!(
            *e.workers(),
            kpm_shard::WorkerSet::Tcp(vec!["a:1".to_string(), "b:2".to_string()])
        );
        for bad in [
            vec!["--local-workers", "0"],
            vec!["--local-workers", "many"],
            vec!["--local-workers", "2", "--workers", "a:1"],
        ] {
            assert!(shard_engine(&args(&bad)).is_err(), "{bad:?} must be rejected");
        }
    }

    /// The distributed acceptance criterion: for a fixed `--seed`, sharded
    /// runs write byte-identical CSVs to the unsharded run, for any worker
    /// count.
    #[test]
    fn local_workers_write_byte_identical_csvs() {
        let dir = std::env::temp_dir().join("kpm_cli_shard_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (cmd, extra, name) in [
            (dos as fn(&Args) -> Result<String, CmdError>, vec![], "dos"),
            (ldos, vec!["--site", "7"], "ldos"),
        ] {
            let run = |workers: Option<&str>| {
                let path = dir.join(format!("{name}_{}.csv", workers.unwrap_or("plain")));
                let mut words = vec![
                    "--lattice",
                    "chain:48",
                    "--moments",
                    "24",
                    "--random",
                    "3",
                    "--sets",
                    "2",
                    "--seed",
                    "11",
                ];
                words.extend_from_slice(&extra);
                if let Some(n) = workers {
                    words.extend_from_slice(&["--local-workers", n]);
                }
                let path_s = path.to_str().unwrap().to_string();
                words.push("--out");
                words.push(&path_s);
                cmd(&args(&words)).unwrap();
                std::fs::read(&path).unwrap()
            };
            let plain = run(None);
            for n in ["1", "2", "4"] {
                assert_eq!(run(Some(n)), plain, "{name} --local-workers {n} must match bytes");
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Same criterion over real TCP: two `kpm worker --once`-style listeners
    /// on localhost, addressed via `--workers a,b`.
    #[test]
    fn tcp_workers_write_byte_identical_dos_csv() {
        let dir = std::env::temp_dir().join("kpm_cli_shard_tcp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = vec![
            "--lattice",
            "chain:48",
            "--moments",
            "24",
            "--random",
            "3",
            "--sets",
            "2",
            "--seed",
            "11",
        ];

        let plain_path = dir.join("plain.csv");
        let mut words = base.clone();
        words.extend_from_slice(&["--out", plain_path.to_str().unwrap()]);
        dos(&args(&words)).unwrap();

        let mut addrs = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..2 {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(listener.local_addr().unwrap().to_string());
            servers.push(std::thread::spawn(move || {
                kpm_shard::serve_listener(&listener, true).unwrap();
            }));
        }
        let addr_list = addrs.join(",");
        let tcp_path = dir.join("tcp.csv");
        let mut words = base.clone();
        words.extend_from_slice(&["--workers", &addr_list, "--out", tcp_path.to_str().unwrap()]);
        let report = dos(&args(&words)).unwrap();
        assert!(report.contains("2 tcp worker(s)"), "{report}");
        for s in servers {
            s.join().unwrap();
        }

        assert_eq!(std::fs::read(&tcp_path).unwrap(), std::fs::read(&plain_path).unwrap());
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Golden trace schema for distributed runs: `shard.*` spans nest under
    /// the command span and the pinned counter names are present.
    #[test]
    fn trace_of_sharded_run_records_shard_spans_and_counters() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());

        let dir = std::env::temp_dir().join("kpm_cli_shard_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let a = args(&[
            "--lattice",
            "chain:48",
            "--moments",
            "16",
            "--random",
            "3",
            "--sets",
            "2",
            "--local-workers",
            "2",
            "--trace",
            path.to_str().unwrap(),
        ]);
        run_with_positionals("dos", &a, &[]).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let value = obs::json::parse(&text).expect("trace file must be valid JSON");
        let spans = value.get("spans").and_then(|v| v.as_array()).expect("spans array");
        let name = |i: usize| spans[i].get("name").unwrap().as_str().unwrap();
        for phase in ["shard.run", "shard.merge"] {
            let idx = (0..spans.len())
                .find(|&i| name(i) == phase)
                .unwrap_or_else(|| panic!("missing span '{phase}':\n{text}"));
            let mut at = idx;
            while let Some(p) = spans[at].get("parent").unwrap().as_u64() {
                at = p as usize;
            }
            assert_eq!(at, 0, "'{phase}' must nest under cli.command:\n{text}");
        }

        let counters = value.get("counters").and_then(|v| v.as_object()).expect("counters");
        let get = |k: &str| {
            counters
                .iter()
                .find(|(name, _)| name == k)
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or_else(|| panic!("missing counter '{k}':\n{text}"))
        };
        // 2 workers x shards_per_worker 2, capped by 6 total realizations.
        assert_eq!(get("shard.completed"), 4);
        assert_eq!(get("shard.worker.completed"), 4);
        assert!(get("shard.dispatched") >= get("shard.completed"), "{text}");
        assert!(get("shard.inflight.peak") >= 1, "{text}");
        // The reconstruct-side bounds resolution goes through the same
        // instrumented seam as the single-process path.
        assert!(get("kpm.bounds.probe") >= 1, "{text}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn exec_options_validate_before_mutating_globals() {
        // Bad values are rejected up front — the process-global policy and
        // thread budget are untouched, so the remaining (parallel) tests in
        // this binary keep running under the default Auto plan.
        let before = exec_policy();
        let e = run("dos", &args(&["--lattice", "chain:16", "--exec", "warp"])).unwrap_err();
        assert!(e.to_string().contains("--exec"), "{e}");
        let e = run("dos", &args(&["--lattice", "chain:16", "--threads", "many"])).unwrap_err();
        assert!(matches!(e, CmdError::Args(ArgError::BadValue { .. })), "{e}");
        assert_eq!(exec_policy(), before, "failed parses must not change the policy");
        // The accepted spellings round-trip through FromStr without touching
        // the global (policy application itself is pinned in kpm's tests).
        for v in ["auto", "realizations", "rows", "hybrid"] {
            assert_eq!(v.parse::<ExecPolicy>().unwrap().to_string(), v);
        }
        assert!("warp".parse::<ExecPolicy>().is_err());
    }

    #[test]
    fn disorder_option() {
        let a = args(&["--lattice", "square:6,6", "--moments", "32", "--disorder", "3.0"]);
        assert!(dos(&a).is_ok());
        let a = args(&["--lattice", "square:6,6", "--disorder", "lots"]);
        assert!(dos(&a).is_err());
    }
}
