//! KPM on the stream-computing device — the paper's contribution.
//!
//! This crate reimplements Sec. III of Zhang et al. (2011) against the
//! simulated device in `kpm-streamsim`:
//!
//! * **Moment generation** (the paper's Fig. 4a): all `S * R` realizations
//!   run concurrently on the device. The paper's mapping — `S*R / BLOCK_SIZE`
//!   thread blocks with **one thread per realization**, each thread owning
//!   four `H_SIZE`-element vectors in global memory and swapping them
//!   through the recursion — is [`Mapping::ThreadPerRealization`]. An
//!   improved **block-per-realization** mapping (threads of a block
//!   partition the vector, shared-memory tree reduction for the dot
//!   products) is provided as [`Mapping::BlockPerRealization`] for the
//!   ablation study.
//! * **Moment reduction** (Fig. 4b): a parallel sum of the per-realization
//!   `mu~_n` into `mu_n`, one block per moment order.
//! * **Memory accounting** (Sec. III-B-2): allocations go through the
//!   simulated 3 GB device; the paper's
//!   `blocks x 4 x H_SIZE x 8` byte formula is checked in tests.
//! * **Future-work items of Sec. V**: the block-size autotuner ([`tune`])
//!   and multi-device partitioning ([`cluster`]).
//!
//! Every run produces both *numbers* (verified against the CPU reference in
//! the `kpm` crate — same random streams, same recursion) and *modeled
//! time* from the device's performance layer (used by the figure
//! reproductions).

pub mod cluster;
pub mod cost;
pub mod engine;
pub mod kernels;
pub mod kubo_stream;
pub mod layout;
pub mod propagate;
pub mod tune;

pub use cluster::DeviceCluster;
pub use cost::{MomentLaunchShape, Precision, SparseFormat};
pub use engine::{DeviceMatrix, EngineError, GpuRunResult, StreamKpmEngine, TimeBreakdown};
pub use kubo_stream::{device_double_moments, DoubleMomentShape};
pub use layout::{Mapping, VectorLayout};
pub use propagate::DevicePropagator;
