//! Two-dimensional KPM (Kubo–Greenwood double moments) on the simulated
//! device.
//!
//! The conductivity workload costs `O(N^2 D)` per random vector —
//! quadratically heavier than the paper's DoS — which makes it the natural
//! stress test for the paper's acceleration strategy. This module runs the
//! same thread-per-realization mapping as the moment engine: each thread
//! owns one realization and executes the nested Chebyshev recursion of
//! `kpm::kubo::double_moments` over its own buffers. Numbers are verified
//! against the host engine; modeled time exposes how the latency-bound
//! mapping fares as the arithmetic intensity grows.

use crate::cost::Precision;
use crate::engine::{DeviceMatrix, EngineError};
use crate::layout::{Mapping, VectorLayout};
use kpm::prelude::{Boundable, DoubleMoments, KpmParams};
use kpm::random::RandomStream;
use kpm_linalg::CsrMatrix;
use kpm_streamsim::kernel::{BlockKernel, BlockScope, KernelCost};
use kpm_streamsim::{Device, Dim3, GlobalBuffer, GpuSpec, LaunchDims, SimTime};

/// Shape of a double-moment launch, for cost accounting.
#[derive(Debug, Clone, Copy)]
pub struct DoubleMomentShape {
    /// Operator dimension `D`.
    pub dim: usize,
    /// Stored Hamiltonian entries.
    pub h_entries: usize,
    /// Stored velocity-operator entries.
    pub w_entries: usize,
    /// Expansion order `N` (both indices).
    pub order: usize,
    /// Total realizations `S * R`.
    pub realizations: usize,
    /// Threads per block.
    pub block_size: usize,
}

impl DoubleMomentShape {
    /// Thread blocks (thread-per-realization mapping).
    pub fn grid_blocks(&self) -> usize {
        self.realizations.div_ceil(self.block_size)
    }

    /// Launch-wide FLOPs: per realization, `N` outer steps each running an
    /// `N`-term inner recursion (`2 h_entries` per matvec, `2 D` per dot)
    /// plus the outer recursion and `N + 1` applications of `W`.
    pub fn flops(&self) -> u64 {
        let d = self.dim as u64;
        let n = self.order as u64;
        let he = self.h_entries as u64;
        let we = self.w_entries as u64;
        let inner_per_m = (n - 1) * 2 * he + n * 2 * d; // matvecs + dots
        let per_real = 10 * d                     // RNG
            + (n + 1) * 2 * we                    // W applications
            + n * inner_per_m                     // inner recursions
            + (n - 1) * 2 * he; // outer recursion
        self.realizations as u64 * per_real
    }

    /// Declared launch cost. Traffic mirrors the 1D engine's reasoning
    /// (DESIGN.md §5) with the `O(N^2)` inner loop dominating: per
    /// realization and inner step, the vectors stream once and the matrix
    /// gathers hit DRAM.
    pub fn kernel_cost(&self, spec: &GpuSpec) -> KernelCost {
        let d = self.dim as u64;
        let n = self.order as u64;
        let reals = self.realizations as u64;
        let vec_bytes = reals * n * n * 4 * 8 * d;
        let gather = reals * n * n * 8 * self.h_entries as u64;
        let mbytes = (12 * self.h_entries + 12 * self.w_entries + 16 * (self.dim + 1)) as u64;
        let replay = if mbytes <= spec.l2_bytes as u64 {
            1
        } else {
            spec.num_sms.min(self.grid_blocks()).max(1) as u64
        };
        KernelCost::new()
            .flops(self.flops())
            .global_read(vec_bytes + gather + n * mbytes * replay)
            .global_write(reals * n * n * 8 * d / 4 + reals * n * n * 8)
            .coalescing(VectorLayout::Interleaved.coalescing(Mapping::ThreadPerRealization))
            .single_precision(self.precision() == Precision::Single)
    }

    /// Prices the launch on `spec` without executing.
    pub fn estimate(&self, spec: &GpuSpec, compute_efficiency: f64) -> SimTime {
        spec.setup_overhead
            + spec.kernel_time(
                &self.kernel_cost(spec),
                self.grid_blocks(),
                self.block_size,
                compute_efficiency,
            )
    }

    /// Arithmetic precision (double throughout, like the paper; kept as a
    /// method so a future SP ablation extends naturally).
    fn precision(&self) -> Precision {
        Precision::Double
    }
}

/// The device kernel: full nested recursion per realization.
struct DoubleMomentKernel {
    h: DeviceMatrix,
    w: DeviceMatrix,
    /// Scratch: 9 vectors per realization, interleaved layout.
    bufs: [GlobalBuffer; 9],
    /// `N^2 x S*R` partial moments, laid out `(n * N + m) * SR + t`.
    partials: GlobalBuffer,
    shape: DoubleMomentShape,
    num_random: usize,
    distribution: kpm::random::Distribution,
    master_seed: u64,
    a_plus: f64,
    a_minus: f64,
    spec: GpuSpec,
}

impl DoubleMomentKernel {
    #[inline]
    fn vidx(&self, i: usize, t: usize) -> usize {
        VectorLayout::Interleaved.index(i, t, self.shape.dim, self.shape.realizations)
    }

    /// `(M x)_row` for realization `t` reading `x` from `src`, for either
    /// stored matrix.
    #[inline]
    fn matvec_row(
        &self,
        scope: &BlockScope<'_>,
        m: &DeviceMatrix,
        src: GlobalBuffer,
        t: usize,
        row: usize,
    ) -> f64 {
        let x = scope.global(src);
        match m {
            DeviceMatrix::Dense { data, dim } => {
                let md = scope.global(*data);
                let mut acc = 0.0;
                for j in 0..*dim {
                    acc += md.load(row * dim + j) * x.load(self.vidx(j, t));
                }
                acc
            }
            DeviceMatrix::Csr { row_ptr, col_idx, values, .. } => {
                let rp = scope.global(*row_ptr);
                let ci = scope.global(*col_idx);
                let vals = scope.global(*values);
                let (start, end) = (rp.load(row) as usize, rp.load(row + 1) as usize);
                let mut acc = 0.0;
                for k in start..end {
                    acc += vals.load(k) * x.load(self.vidx(ci.load(k) as usize, t));
                }
                acc
            }
        }
    }

    fn run_realization(&self, scope: &BlockScope<'_>, t: usize) {
        let d = self.shape.dim;
        let n_mom = self.shape.order;
        let sr = self.shape.realizations;
        let (s, r) = (t / self.num_random, t % self.num_random);
        // Buffer roles.
        let [rvec, wl, b_prev, b_cur, b_next, wb, l_prev, l_cur, l_next] = self.bufs;

        // Generate |r>.
        let mut stream = RandomStream::new(self.distribution, self.master_seed, s, r);
        {
            let rv = scope.global(rvec);
            for i in 0..d {
                rv.store(self.vidx(i, t), stream.next());
            }
        }
        // <wl| = -(W r).
        {
            let wlv = scope.global(wl);
            for i in 0..d {
                let v = self.matvec_row(scope, &self.w, rvec, t, i);
                wlv.store(self.vidx(i, t), -v);
            }
        }
        // Outer recursion: b_0 = r, b_1 = H~ r.
        {
            let bp = scope.global(b_prev);
            let rv = scope.global(rvec);
            for i in 0..d {
                bp.store(self.vidx(i, t), rv.load(self.vidx(i, t)));
            }
        }
        self.scaled_matvec(scope, b_prev, b_cur, t);

        let mut bp = b_prev;
        let mut bc = b_cur;
        let mut bn = b_next;
        let inv_d = 1.0 / d as f64;
        let partials = scope.global(self.partials);
        for m in 0..n_mom {
            let b_m = if m == 0 { bp } else { bc };
            // wb = W b_m.
            {
                let wbv = scope.global(wb);
                for i in 0..d {
                    let v = self.matvec_row(scope, &self.w, b_m, t, i);
                    wbv.store(self.vidx(i, t), v);
                }
            }
            // Inner recursion on wb, contracting with <wl|.
            {
                let lp = scope.global(l_prev);
                let wbv = scope.global(wb);
                for i in 0..d {
                    lp.store(self.vidx(i, t), wbv.load(self.vidx(i, t)));
                }
            }
            self.scaled_matvec(scope, l_prev, l_cur, t);
            partials.store(m * sr + t, -self.dot(scope, wl, l_prev, t) * inv_d);
            if n_mom > 1 {
                partials.store((n_mom + m) * sr + t, -self.dot(scope, wl, l_cur, t) * inv_d);
            }
            let mut lp = l_prev;
            let mut lc = l_cur;
            let mut ln = l_next;
            for n in 2..n_mom {
                self.cheb_step(scope, lc, lp, ln, t);
                let rotated = lp;
                lp = lc;
                lc = ln;
                ln = rotated;
                partials.store((n * n_mom + m) * sr + t, -self.dot(scope, wl, lc, t) * inv_d);
            }
            // Advance the outer recursion.
            if m + 1 < n_mom && m >= 1 {
                self.cheb_step(scope, bc, bp, bn, t);
                let rotated = bp;
                bp = bc;
                bc = bn;
                bn = rotated;
            }
        }
    }

    /// `dst = H~ src` for realization `t`.
    fn scaled_matvec(
        &self,
        scope: &BlockScope<'_>,
        src: GlobalBuffer,
        dst: GlobalBuffer,
        t: usize,
    ) {
        let d = self.shape.dim;
        let dstv = scope.global(dst);
        let srcv = scope.global(src);
        for i in 0..d {
            let h = self.matvec_row(scope, &self.h, src, t, i);
            let scaled = (h - self.a_plus * srcv.load(self.vidx(i, t))) / self.a_minus;
            dstv.store(self.vidx(i, t), scaled);
        }
    }

    /// `next = 2 H~ cur - prev` for realization `t`.
    fn cheb_step(
        &self,
        scope: &BlockScope<'_>,
        cur: GlobalBuffer,
        prev: GlobalBuffer,
        next: GlobalBuffer,
        t: usize,
    ) {
        let d = self.shape.dim;
        let nx = scope.global(next);
        let pv = scope.global(prev);
        let cv = scope.global(cur);
        for i in 0..d {
            let h = self.matvec_row(scope, &self.h, cur, t, i);
            let scaled = (h - self.a_plus * cv.load(self.vidx(i, t))) / self.a_minus;
            nx.store(self.vidx(i, t), 2.0 * scaled - pv.load(self.vidx(i, t)));
        }
    }

    fn dot(&self, scope: &BlockScope<'_>, a: GlobalBuffer, b: GlobalBuffer, t: usize) -> f64 {
        let av = scope.global(a);
        let bv = scope.global(b);
        let mut acc = 0.0;
        for i in 0..self.shape.dim {
            acc += av.load(self.vidx(i, t)) * bv.load(self.vidx(i, t));
        }
        acc
    }
}

impl BlockKernel for DoubleMomentKernel {
    fn name(&self) -> &'static str {
        "kpm_double_moments"
    }

    fn execute(&self, scope: &mut BlockScope<'_>) {
        let bs = scope.block_dim().count();
        let block = scope.block_id();
        for lane in 0..bs {
            let t = block * bs + lane;
            if t < self.shape.realizations {
                self.run_realization(scope, t);
            }
        }
    }

    fn cost(&self, _dims: &LaunchDims) -> KernelCost {
        self.shape.kernel_cost(&self.spec)
    }
}

/// Runs the double-moment estimation on a simulated device, returning the
/// moments, the modeled total time, and peak device memory.
///
/// `h` is the raw Hamiltonian (rescaled on the fly via its Gershgorin
/// bounds, like the 1D engine) and `w` the velocity operator from
/// [`kpm::kubo::velocity_operator`].
///
/// # Errors
/// Device or parameter errors.
pub fn device_double_moments(
    spec: GpuSpec,
    h: &CsrMatrix,
    w: &CsrMatrix,
    params: &KpmParams,
) -> Result<(DoubleMoments, SimTime, usize), EngineError> {
    params.validate()?;
    let d = h.nrows();
    assert_eq!(w.nrows(), d, "velocity operator dimension");
    let sr = params.total_realizations();
    let n_mom = params.num_moments;
    let bounds = h.spectral_bounds(params.bounds)?.padded(params.padding);

    let mut dev = Device::new(spec);
    dev.advance_clock(dev.spec().setup_overhead);

    let upload = |dev: &mut Device, m: &CsrMatrix| -> Result<DeviceMatrix, EngineError> {
        let rp: Vec<f64> = m.row_ptr().iter().map(|&v| v as f64).collect();
        let ci: Vec<f64> = m.col_idx().iter().map(|&v| v as f64).collect();
        let row_ptr = dev.alloc(rp.len())?;
        let col_idx = dev.alloc(ci.len())?;
        let values = dev.alloc(m.values().len())?;
        dev.copy_to_device(&rp, row_ptr)?;
        dev.copy_to_device(&ci, col_idx)?;
        dev.copy_to_device(m.values(), values)?;
        Ok(DeviceMatrix::Csr { row_ptr, col_idx, values, dim: m.nrows(), nnz: m.nnz() })
    };
    let dh = upload(&mut dev, h)?;
    let dw = upload(&mut dev, w)?;

    let mut bufs_vec = Vec::with_capacity(9);
    for _ in 0..9 {
        bufs_vec.push(dev.alloc(d * sr)?);
    }
    let bufs: [GlobalBuffer; 9] = bufs_vec.try_into().expect("nine buffers");
    let partials = dev.alloc(n_mom * n_mom * sr)?;

    let shape = DoubleMomentShape {
        dim: d,
        h_entries: h.nnz(),
        w_entries: w.nnz(),
        order: n_mom,
        realizations: sr,
        block_size: 128,
    };
    let kernel = DoubleMomentKernel {
        h: dh,
        w: dw,
        bufs,
        partials,
        shape,
        num_random: params.num_random,
        distribution: params.distribution,
        master_seed: params.seed,
        a_plus: bounds.a_plus(),
        a_minus: bounds.a_minus(),
        spec: dev.spec().clone(),
    };
    dev.launch(&kernel, Dim3::x(shape.grid_blocks()), Dim3::x(shape.block_size.min(sr.max(1))))?;

    // Reduce on host (charged readback of the full partial buffer, as a
    // real implementation would transfer it for the energy reconstruction).
    let mut raw = vec![0.0; n_mom * n_mom * sr];
    let t0 = dev.elapsed();
    dev.copy_to_host(partials, &mut raw)?;
    let _ = t0;
    let mut mu = vec![0.0; n_mom * n_mom];
    for (slot, m) in mu.iter_mut().enumerate() {
        let base = slot * sr;
        *m = raw[base..base + sr].iter().sum::<f64>() / sr as f64;
    }
    let peak = dev.mem_peak();
    Ok((DoubleMoments { mu, order: n_mom }, dev.elapsed(), peak))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm::kubo::{double_moments, velocity_operator};
    use kpm::rescale::rescale;
    use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};

    fn chain(l: usize) -> (CsrMatrix, CsrMatrix) {
        let h = TightBinding::new(
            HypercubicLattice::chain(l, Boundary::Periodic),
            1.0,
            OnSite::Disorder { width: 1.0, seed: 6 },
        )
        .build_csr();
        let pos: Vec<f64> = (0..l).map(|i| i as f64).collect();
        let w = velocity_operator(&h, &pos, Some(l as f64));
        (h, w)
    }

    #[test]
    fn device_double_moments_match_host() {
        let (h, w) = chain(24);
        let params = KpmParams::new(6).with_random_vectors(3, 2).with_seed(77);
        let bounds = h.spectral_bounds(params.bounds).unwrap();
        let rescaled = rescale(&h, bounds.padded(params.padding), 0.0).unwrap();
        let host = double_moments(&rescaled, &w, &params).unwrap();

        let (device, time, peak) =
            device_double_moments(GpuSpec::tesla_c2050(), &h, &w, &params).unwrap();
        assert_eq!(device.order, 6);
        assert!(time.as_secs_f64() > 0.0);
        assert!(peak > 0);
        for n in 0..6 {
            for m in 0..6 {
                let scale = 1.0 + host.get(n, m).abs();
                assert!(
                    (host.get(n, m) - device.get(n, m)).abs() < 1e-9 * scale,
                    "mu_{n}{m}: host {} vs device {}",
                    host.get(n, m),
                    device.get(n, m)
                );
            }
        }
    }

    #[test]
    fn shape_flops_scale_quadratically_in_order() {
        let base = DoubleMomentShape {
            dim: 1000,
            h_entries: 7000,
            w_entries: 6000,
            order: 64,
            realizations: 1792,
            block_size: 128,
        };
        let doubled = DoubleMomentShape { order: 128, ..base };
        let ratio = doubled.flops() as f64 / base.flops() as f64;
        assert!((ratio - 4.0).abs() < 0.15, "O(N^2): ratio {ratio}");
    }

    #[test]
    fn conductivity_is_far_heavier_than_dos_at_paper_scale() {
        // The motivation for accelerating KPM grows with the observable:
        // at the paper's Fig. 5 parameters, N = 256 double moments cost
        // ~100x the DoS run.
        let spec = GpuSpec::tesla_c2050();
        let dos_shape = crate::cost::MomentLaunchShape {
            dim: 1000,
            stored_entries: 7000,
            dense: false,
            format: crate::cost::SparseFormat::Csr,
            num_moments: 256,
            realizations: 1792,
            mapping: Mapping::ThreadPerRealization,
            layout: VectorLayout::Interleaved,
            block_size: 128,
            precision: Precision::Double,
        };
        let kubo_shape = DoubleMomentShape {
            dim: 1000,
            h_entries: 7000,
            w_entries: 6000,
            order: 256,
            realizations: 1792,
            block_size: 128,
        };
        let t_dos = kpm_streamsim::queue::MomentRunPlan::new(dos_shape)
            .with_overlap(false)
            .total(&spec, 0.2)
            .as_secs_f64();
        let t_kubo = kubo_shape.estimate(&spec, 0.2).as_secs_f64();
        assert!(t_kubo > 50.0 * t_dos, "2D KPM must dwarf the DoS: {t_dos} vs {t_kubo}");
    }
}
