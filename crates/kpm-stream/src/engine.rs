//! The host-side orchestrator — the paper's `main` program.
//!
//! Uploads the Hamiltonian, allocates the four recursion vectors per
//! realization and the partial-moment buffer (the memory budget of the
//! paper's Sec. III-B-2), launches the generation and reduction kernels,
//! and reads the moments back. Produces both verified numbers and a
//! modeled-time breakdown.

use crate::cost::{MomentLaunchShape, Precision, SparseFormat};
use crate::kernels::{MomentGenKernel, MomentReduceKernel};
use crate::layout::{Mapping, VectorLayout};
use kpm::prelude::*;
use kpm_linalg::{CsrMatrix, DenseMatrix};
use kpm_streamsim::{Device, Dim3, GlobalBuffer, GpuSpec, SimError, SimTime};
use std::fmt;

/// A matrix resident in device global memory.
#[derive(Debug, Clone, Copy)]
pub enum DeviceMatrix {
    /// Row-major dense storage.
    Dense {
        /// `dim * dim` values.
        data: GlobalBuffer,
        /// Dimension `D`.
        dim: usize,
    },
    /// CSR storage; index arrays are kept as `f64` words in the simulated
    /// memory (exact for indices below 2^53 — a simulator simplification,
    /// accounted as 4-byte traffic in the cost model to match real CSR).
    Csr {
        /// `dim + 1` row pointers.
        row_ptr: GlobalBuffer,
        /// `nnz` column indices.
        col_idx: GlobalBuffer,
        /// `nnz` values.
        values: GlobalBuffer,
        /// Dimension `D`.
        dim: usize,
        /// Stored entries.
        nnz: usize,
    },
}

impl DeviceMatrix {
    /// Dimension `D`.
    pub fn dim(&self) -> usize {
        match self {
            DeviceMatrix::Dense { dim, .. } | DeviceMatrix::Csr { dim, .. } => *dim,
        }
    }

    /// Stored entries.
    pub fn stored_entries(&self) -> usize {
        match self {
            DeviceMatrix::Dense { dim, .. } => dim * dim,
            DeviceMatrix::Csr { nnz, .. } => *nnz,
        }
    }

    /// Coefficient slots a memory-traffic model should charge for.
    ///
    /// Mirrors `LinearOp::model_entries`: equal to [`Self::stored_entries`]
    /// for the dense and CSR variants resident here, but kept distinct so
    /// cost-model call sites charge padded slot counts if a padded format
    /// is ever uploaded.
    pub fn model_entries(&self) -> usize {
        self.stored_entries()
    }

    /// Whether storage is dense.
    pub fn is_dense(&self) -> bool {
        matches!(self, DeviceMatrix::Dense { .. })
    }
}

/// Errors from the stream engine.
#[derive(Debug)]
pub enum EngineError {
    /// Device-side failure (out of memory, bad launch...).
    Sim(SimError),
    /// KPM-side failure (bad parameters, bounds...).
    Kpm(KpmError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sim(e) => write!(f, "device error: {e}"),
            EngineError::Kpm(e) => write!(f, "KPM error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

impl From<KpmError> for EngineError {
    fn from(e: KpmError) -> Self {
        EngineError::Kpm(e)
    }
}

/// Modeled-time breakdown of one GPU KPM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Context/allocation setup (once per run).
    pub setup: SimTime,
    /// Host→device matrix transfer.
    pub upload: SimTime,
    /// Moment-generation launch (Fig. 4a).
    pub generation: SimTime,
    /// Moment-reduction launch (Fig. 4b).
    pub reduction: SimTime,
    /// Device→host moments transfer.
    pub download: SimTime,
}

impl TimeBreakdown {
    /// Total modeled time.
    pub fn total(&self) -> SimTime {
        self.setup + self.upload + self.generation + self.reduction + self.download
    }
}

/// Result of one GPU KPM run.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Normalized moments with cross-realization statistics.
    pub moments: MomentStats,
    /// Rescaling centre used.
    pub a_plus: f64,
    /// Rescaling half-width used.
    pub a_minus: f64,
    /// Modeled time breakdown.
    pub time: TimeBreakdown,
    /// Peak device memory during the run, bytes.
    pub peak_device_bytes: usize,
}

/// The KPM stream engine: owns a simulated device and runs the paper's
/// pipeline on it.
pub struct StreamKpmEngine {
    device: Device,
    mapping: Mapping,
    layout: VectorLayout,
    block_size: usize,
    compute_efficiency: f64,
}

impl StreamKpmEngine {
    /// Engine on a fresh device with the paper's defaults:
    /// thread-per-realization mapping, interleaved vectors,
    /// `BLOCK_SIZE = 128`, and the calibrated Fermi compute efficiency
    /// (DESIGN.md §5).
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            device: Device::new(spec),
            mapping: Mapping::ThreadPerRealization,
            layout: VectorLayout::Interleaved,
            block_size: 128,
            compute_efficiency: 0.2,
        }
    }

    /// Selects the work mapping (and switches to its natural layout).
    pub fn with_mapping(mut self, mapping: Mapping) -> Self {
        self.mapping = mapping;
        self.layout = VectorLayout::natural_for(mapping);
        self
    }

    /// Overrides the vector layout (e.g. to measure the uncoalesced
    /// naive-port ablation).
    pub fn with_layout(mut self, layout: VectorLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets `BLOCK_SIZE`.
    ///
    /// # Panics
    /// Panics if zero.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        self.block_size = block_size;
        self
    }

    /// Sets the calibrated compute-efficiency knob.
    pub fn with_compute_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency in (0, 1]");
        self.compute_efficiency = eff;
        self
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Current block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Current mapping.
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    /// The launch shape for a hypothetical run — used to price paper-scale
    /// figures without execution.
    pub fn shape_for(
        &self,
        dim: usize,
        stored_entries: usize,
        dense: bool,
        num_moments: usize,
        realizations: usize,
    ) -> MomentLaunchShape {
        MomentLaunchShape {
            dim,
            stored_entries,
            dense,
            format: SparseFormat::Csr,
            num_moments,
            realizations,
            mapping: self.mapping,
            layout: self.layout,
            block_size: self.block_size,
            precision: Precision::Double,
        }
    }

    /// Prices a run at the given shape without executing it.
    ///
    /// Retired: this is the closed-form analytic sum. Build a
    /// [`kpm_streamsim::queue::MomentRunPlan`] (or submit through
    /// `kpm::device::SimDevice`) to control overlap, chunking, and device
    /// count; with overlap disabled the pipeline reproduces this value
    /// bit-for-bit.
    #[deprecated(
        since = "0.7.0",
        note = "route through queue::MomentRunPlan (or kpm::device::SimDevice)"
    )]
    #[allow(deprecated)]
    pub fn estimate(&self, shape: &MomentLaunchShape) -> SimTime {
        shape.estimate_total(self.device.spec(), self.compute_efficiency)
    }

    /// Runs the full pipeline on a CSR matrix.
    ///
    /// # Errors
    /// Device (memory/launch) or KPM (parameters/bounds) errors.
    pub fn compute_moments_csr(
        &mut self,
        h: &CsrMatrix,
        params: &KpmParams,
    ) -> Result<GpuRunResult, EngineError> {
        params.validate()?;
        let bounds = h.spectral_bounds(params.bounds)?.padded(params.padding);
        self.run(MatrixUpload::Csr(h), bounds.a_plus(), bounds.a_minus(), params)
    }

    /// Runs the full pipeline on a dense matrix.
    ///
    /// # Errors
    /// Device (memory/launch) or KPM (parameters/bounds) errors.
    pub fn compute_moments_dense(
        &mut self,
        h: &DenseMatrix,
        params: &KpmParams,
    ) -> Result<GpuRunResult, EngineError> {
        params.validate()?;
        let bounds = h.spectral_bounds(params.bounds)?.padded(params.padding);
        self.run(MatrixUpload::Dense(h), bounds.a_plus(), bounds.a_minus(), params)
    }

    /// Runs the pipeline and reconstructs the DoS from the device moments.
    ///
    /// # Errors
    /// Same as [`StreamKpmEngine::compute_moments_csr`].
    pub fn compute_dos_csr(
        &mut self,
        h: &CsrMatrix,
        params: &KpmParams,
    ) -> Result<(kpm::Dos, TimeBreakdown), EngineError> {
        let run = self.compute_moments_csr(h, params)?;
        let dos = DosEstimator::new(params.clone()).reconstruct(
            run.moments.clone(),
            run.a_plus,
            run.a_minus,
        )?;
        Ok((dos, run.time))
    }

    fn run(
        &mut self,
        matrix: MatrixUpload<'_>,
        a_plus: f64,
        a_minus: f64,
        params: &KpmParams,
    ) -> Result<GpuRunResult, EngineError> {
        if a_minus <= 0.0 {
            return Err(EngineError::Kpm(KpmError::DegenerateSpectrum));
        }
        let _run_span = kpm_obs::span("stream.run");
        let d = matrix.dim();
        let sr = params.total_realizations();
        let n_mom = params.num_moments;
        let dev = &mut self.device;

        let clock0 = dev.elapsed();
        {
            let _span = kpm_obs::span("stream.setup");
            dev.advance_clock(dev.spec().setup_overhead);
        }
        let setup = dev.elapsed().0 - clock0.0;

        // Upload the matrix.
        let t0 = dev.elapsed();
        let dmat = {
            let _span = kpm_obs::span("stream.upload");
            matrix.upload(dev)?
        };
        let upload = dev.elapsed().0 - t0.0;

        // Recursion vectors (4 per realization: the paper's memory layout)
        // and moment buffers.
        let r0 = dev.alloc(d * sr)?;
        let va = dev.alloc(d * sr)?;
        let vb = dev.alloc(d * sr)?;
        let vc = dev.alloc(d * sr)?;
        let partials = dev.alloc(n_mom * sr)?;
        let reduced = dev.alloc(n_mom)?;

        let shape = MomentLaunchShape {
            dim: d,
            stored_entries: dmat.model_entries(),
            dense: dmat.is_dense(),
            format: SparseFormat::Csr,
            num_moments: n_mom,
            realizations: sr,
            mapping: self.mapping,
            layout: self.layout,
            block_size: self.block_size,
            precision: Precision::Double,
        };

        // Fig. 4a launch.
        let gen = MomentGenKernel {
            matrix: dmat,
            r0,
            va,
            vb,
            vc,
            partials,
            shape,
            num_random: params.num_random,
            distribution: params.distribution,
            master_seed: params.seed,
            a_plus,
            a_minus,
            spec: dev.spec().clone(),
        };
        let block_threads = match self.mapping {
            Mapping::ThreadPerRealization => self.block_size.min(sr.max(1)),
            Mapping::BlockPerRealization => self.block_size,
        };
        let generation = {
            let _span = kpm_obs::span("stream.generation");
            dev.launch_with_efficiency(
                &gen,
                Dim3::x(shape.grid_blocks()),
                Dim3::x(block_threads),
                self.compute_efficiency,
            )?
        };

        // Fig. 4b launch.
        let reduce = MomentReduceKernel {
            partials,
            output: reduced,
            realizations: sr,
            num_moments: n_mom,
            shape,
        };
        let reduce_threads =
            self.block_size.min(dev.spec().max_threads_per_block).min(sr.next_power_of_two());
        let reduction = {
            let _span = kpm_obs::span("stream.reduction");
            dev.launch_with_efficiency(
                &reduce,
                Dim3::x(n_mom),
                Dim3::x(reduce_threads),
                self.compute_efficiency,
            )?
        };

        // Read the moments back (charged — the real program does this).
        let t0 = dev.elapsed();
        let mut sums = vec![0.0; n_mom];
        {
            let _span = kpm_obs::span("stream.download");
            dev.copy_to_host(reduced, &mut sums)?;
        }
        let download = dev.elapsed().0 - t0.0;

        // Cross-realization statistics from the partials (verification
        // facility: peeked, not charged).
        let mut raw = vec![0.0; n_mom * sr];
        dev.peek(partials, &mut raw)?;
        let inv_d = 1.0 / d as f64;
        let mut mean = vec![0.0; n_mom];
        let mut m2 = vec![0.0; n_mom];
        for t in 0..sr {
            let k = (t + 1) as f64;
            for n in 0..n_mom {
                let v = raw[n * sr + t] * inv_d;
                let delta = v - mean[n];
                mean[n] += delta / k;
                m2[n] += delta * (v - mean[n]);
            }
        }
        let std_err: Vec<f64> = if sr > 1 {
            m2.iter().map(|&s| (s / (sr as f64 - 1.0)).sqrt() / (sr as f64).sqrt()).collect()
        } else {
            vec![0.0; n_mom]
        };
        // The device's reduced sums are the authoritative moments
        // (mu_n = sum / (D * SR)); the Welford mean agrees to rounding.
        let moments: Vec<f64> = sums.iter().map(|&s| s * inv_d / sr as f64).collect();

        let peak = dev.mem_peak();

        // Mirror the modeled stage times into ambient counters so a
        // `--trace` run records the *device* budget next to the host spans
        // (which only measure simulator wall time).
        let modeled_us = |t: f64| (t * 1e6) as u64;
        kpm_obs::counter_add("stream.modeled.setup_us", modeled_us(setup));
        kpm_obs::counter_add("stream.modeled.upload_us", modeled_us(upload));
        kpm_obs::counter_add("stream.modeled.generation_us", modeled_us(generation.0));
        kpm_obs::counter_add("stream.modeled.reduction_us", modeled_us(reduction.0));
        kpm_obs::counter_add("stream.modeled.download_us", modeled_us(download));

        // Free device memory (matrix buffers too).
        dev.free(r0)?;
        dev.free(va)?;
        dev.free(vb)?;
        dev.free(vc)?;
        dev.free(partials)?;
        dev.free(reduced)?;
        match dmat {
            DeviceMatrix::Dense { data, .. } => dev.free(data)?,
            DeviceMatrix::Csr { row_ptr, col_idx, values, .. } => {
                dev.free(row_ptr)?;
                dev.free(col_idx)?;
                dev.free(values)?;
            }
        }

        Ok(GpuRunResult {
            moments: MomentStats { mean: moments, std_err, samples: sr },
            a_plus,
            a_minus,
            time: TimeBreakdown {
                setup: SimTime(setup),
                upload: SimTime(upload),
                generation,
                reduction,
                download: SimTime(download),
            },
            peak_device_bytes: peak,
        })
    }
}

impl fmt::Debug for StreamKpmEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamKpmEngine")
            .field("device", &self.device)
            .field("mapping", &self.mapping)
            .field("layout", &self.layout)
            .field("block_size", &self.block_size)
            .finish()
    }
}

enum MatrixUpload<'a> {
    Dense(&'a DenseMatrix),
    Csr(&'a CsrMatrix),
}

impl MatrixUpload<'_> {
    fn dim(&self) -> usize {
        match self {
            MatrixUpload::Dense(m) => m.nrows(),
            MatrixUpload::Csr(m) => m.nrows(),
        }
    }

    fn upload(&self, dev: &mut Device) -> Result<DeviceMatrix, SimError> {
        match self {
            MatrixUpload::Dense(m) => {
                let data = dev.alloc(m.data().len())?;
                dev.copy_to_device(m.data(), data)?;
                Ok(DeviceMatrix::Dense { data, dim: m.nrows() })
            }
            MatrixUpload::Csr(m) => {
                let rp: Vec<f64> = m.row_ptr().iter().map(|&v| v as f64).collect();
                let ci: Vec<f64> = m.col_idx().iter().map(|&v| v as f64).collect();
                let row_ptr = dev.alloc(rp.len())?;
                let col_idx = dev.alloc(ci.len())?;
                let values = dev.alloc(m.values().len())?;
                dev.copy_to_device(&rp, row_ptr)?;
                dev.copy_to_device(&ci, col_idx)?;
                dev.copy_to_device(m.values(), values)?;
                Ok(DeviceMatrix::Csr { row_ptr, col_idx, values, dim: m.nrows(), nnz: m.nnz() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm::moments::stochastic_moments;
    use kpm::rescale::rescale;
    use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};

    fn small_lattice() -> CsrMatrix {
        TightBinding::new(
            HypercubicLattice::cubic(4, 4, 4, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        )
        .store_zero_diagonal(true)
        .build_csr()
    }

    fn test_params(n: usize) -> KpmParams {
        KpmParams::new(n).with_random_vectors(4, 2).with_seed(2024)
    }

    /// CPU reference moments for the same matrix and parameters.
    fn cpu_reference(h: &CsrMatrix, params: &KpmParams) -> MomentStats {
        let bounds = h.spectral_bounds(params.bounds).unwrap();
        let rescaled = rescale(h, bounds, params.padding).unwrap();
        stochastic_moments(&rescaled, params)
    }

    #[test]
    fn gpu_moments_match_cpu_reference_sparse() {
        let h = small_lattice();
        let params = test_params(32);
        let cpu = cpu_reference(&h, &params);
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let gpu = engine.compute_moments_csr(&h, &params).unwrap();
        for n in 0..32 {
            let scale = 1.0 + cpu.mean[n].abs();
            assert!(
                (cpu.mean[n] - gpu.moments.mean[n]).abs() < 1e-10 * scale,
                "mu_{n}: cpu {} vs gpu {}",
                cpu.mean[n],
                gpu.moments.mean[n]
            );
        }
    }

    #[test]
    fn gpu_moments_match_cpu_reference_dense() {
        let h = kpm_lattice::dense_random_symmetric(48, 1.0, 77);
        let params = test_params(24);
        let bounds = h.spectral_bounds(params.bounds).unwrap();
        let rescaled = rescale(&h, bounds, params.padding).unwrap();
        let cpu = stochastic_moments(&rescaled, &params);
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let gpu = engine.compute_moments_dense(&h, &params).unwrap();
        for n in 0..24 {
            let scale = 1.0 + cpu.mean[n].abs();
            assert!(
                (cpu.mean[n] - gpu.moments.mean[n]).abs() < 1e-10 * scale,
                "mu_{n}: {} vs {}",
                cpu.mean[n],
                gpu.moments.mean[n]
            );
        }
    }

    #[test]
    fn both_mappings_agree() {
        let h = small_lattice();
        let params = test_params(16);
        let mut paper = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let mut improved = StreamKpmEngine::new(GpuSpec::tesla_c2050())
            .with_mapping(Mapping::BlockPerRealization)
            .with_block_size(32);
        let a = paper.compute_moments_csr(&h, &params).unwrap();
        let b = improved.compute_moments_csr(&h, &params).unwrap();
        for n in 0..16 {
            let scale = 1.0 + a.moments.mean[n].abs();
            assert!(
                (a.moments.mean[n] - b.moments.mean[n]).abs() < 1e-9 * scale,
                "mu_{n}: {} vs {}",
                a.moments.mean[n],
                b.moments.mean[n]
            );
        }
    }

    #[test]
    fn mu0_is_exactly_one_for_rademacher() {
        let h = small_lattice();
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let run = engine.compute_moments_csr(&h, &test_params(8)).unwrap();
        assert!((run.moments.mean[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_breakdown_is_positive_and_consistent() {
        let h = small_lattice();
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let run = engine.compute_moments_csr(&h, &test_params(16)).unwrap();
        let t = run.time;
        assert!(t.setup.as_secs_f64() > 0.0);
        assert!(t.upload.as_secs_f64() > 0.0);
        assert!(t.generation.as_secs_f64() > 0.0);
        assert!(t.reduction.as_secs_f64() > 0.0);
        assert!(t.download.as_secs_f64() > 0.0);
        let total = t.total().as_secs_f64();
        assert!(
            (total
                - (t.setup.as_secs_f64()
                    + t.upload.as_secs_f64()
                    + t.generation.as_secs_f64()
                    + t.reduction.as_secs_f64()
                    + t.download.as_secs_f64()))
            .abs()
                < 1e-12
        );
        // Engine time equals device clock.
        assert!((engine.device().elapsed().as_secs_f64() - total).abs() < 1e-12);
    }

    #[test]
    fn device_memory_is_fully_released() {
        let h = small_lattice();
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let run = engine.compute_moments_csr(&h, &test_params(8)).unwrap();
        assert_eq!(engine.device().mem_in_use(), 0);
        assert!(run.peak_device_bytes > 0);
        // Peak accounts at least the four vectors (paper Sec. III-B-2).
        let d = h.nrows();
        let sr = 8;
        assert!(run.peak_device_bytes >= 4 * 8 * d * sr);
    }

    #[test]
    fn modeled_time_grows_with_n() {
        let h = small_lattice();
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let t1 =
            engine.compute_moments_csr(&h, &test_params(16)).unwrap().time.generation.as_secs_f64();
        let t2 =
            engine.compute_moments_csr(&h, &test_params(32)).unwrap().time.generation.as_secs_f64();
        assert!(t2 > 1.5 * t1, "generation time must scale with N: {t1} vs {t2}");
    }

    #[test]
    fn dos_from_gpu_is_sane() {
        let h = small_lattice();
        let params = test_params(64).with_grid_points(256);
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let (dos, _) = engine.compute_dos_csr(&h, &params).unwrap();
        assert!((dos.integrate() - 1.0).abs() < 0.05, "integral {}", dos.integrate());
        // Band of the cubic lattice is [-6, 6].
        assert!(dos.energies[0] > -6.5 && *dos.energies.last().unwrap() < 6.5);
    }

    #[test]
    #[allow(deprecated)] // pins the retired shim alongside its successor
    fn estimate_is_pure_and_positive() {
        let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let shape = engine.shape_for(1000, 7000, false, 1024, 1792);
        let t = engine.estimate(&shape);
        assert!(t.as_secs_f64() > 0.0);
        // No launches recorded by estimating.
        assert!(engine.device().launches().is_empty());
    }

    #[test]
    fn uncoalesced_ablation_runs_and_is_slower_in_model() {
        let h = small_lattice();
        let params = test_params(16);
        let mut good = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let mut bad =
            StreamKpmEngine::new(GpuSpec::tesla_c2050()).with_layout(VectorLayout::Contiguous);
        let tg = good.compute_moments_csr(&h, &params).unwrap();
        let tb = bad.compute_moments_csr(&h, &params).unwrap();
        // Same numbers...
        for n in 0..16 {
            assert!((tg.moments.mean[n] - tb.moments.mean[n]).abs() < 1e-9);
        }
        // ...worse modeled memory behaviour (generation only; totals are
        // dominated by setup at this tiny scale).
        assert!(
            tb.time.generation.as_secs_f64() >= tg.time.generation.as_secs_f64(),
            "{} vs {}",
            tb.time.generation.as_secs_f64(),
            tg.time.generation.as_secs_f64()
        );
    }
}
