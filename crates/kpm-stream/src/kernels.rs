//! The device kernels of the paper's Fig. 4.
//!
//! * [`MomentGenKernel`] — Fig. 4a: random-vector generation plus the full
//!   `N`-iteration Chebyshev recursion and per-realization dot products,
//!   in one launch. Supports both work mappings (see
//!   [`crate::layout::Mapping`]).
//! * [`MomentReduceKernel`] — Fig. 4b: parallel summation of the
//!   per-realization `mu~_n` into `mu_n`, one block per moment order, with
//!   a shared-memory tree reduction.
//!
//! The kernels apply the spectral rescaling on the fly:
//! `H~ x = (H x - a_+ x) / a_-`, so the uploaded matrix is the *raw*
//! Hamiltonian, exactly as the host code of the paper would do it.
//!
//! Random streams are the same counter-based streams the CPU reference
//! uses ([`kpm::random::RandomStream`]), so per-realization moments agree
//! with the reference to floating-point reduction-order differences
//! (~1e-13), which the tests pin down.

use crate::cost::MomentLaunchShape;
use crate::engine::DeviceMatrix;
use crate::layout::Mapping;
use kpm::random::{Distribution, RandomStream};
use kpm_streamsim::kernel::{BlockKernel, BlockScope, KernelCost};
use kpm_streamsim::{GlobalBuffer, GpuSpec, LaunchDims};

/// Fig. 4a: generation of all per-realization moments.
pub struct MomentGenKernel {
    /// The (raw, unscaled) matrix on the device.
    pub matrix: DeviceMatrix,
    /// Start vectors `r_0`, one per realization.
    pub r0: GlobalBuffer,
    /// Recursion buffer `r_{n}` (previous).
    pub va: GlobalBuffer,
    /// Recursion buffer `r_{n+1}` (current).
    pub vb: GlobalBuffer,
    /// Recursion buffer `r_{n+2}` (next) — the paper's fourth vector.
    pub vc: GlobalBuffer,
    /// Per-realization moments `mu~_n`, laid out `n * S*R + t`.
    pub partials: GlobalBuffer,
    /// Launch shape (dims, mapping, layout, block size).
    pub shape: MomentLaunchShape,
    /// `R`, to decompose a realization index into `(s, r)` for seeding.
    pub num_random: usize,
    /// Random component distribution.
    pub distribution: Distribution,
    /// Master seed.
    pub master_seed: u64,
    /// Rescaling centre `a_+`.
    pub a_plus: f64,
    /// Rescaling half-width `a_-`.
    pub a_minus: f64,
    /// Hardware spec used for cost declaration (L2-dependent traffic).
    pub spec: GpuSpec,
}

impl MomentGenKernel {
    #[inline]
    fn vidx(&self, i: usize, t: usize) -> usize {
        self.shape.layout.index(i, t, self.shape.dim, self.shape.realizations)
    }

    /// `y_row = (H x)_row` for realization `t`, reading `x` from `src`.
    #[inline]
    fn matvec_row(&self, scope: &BlockScope<'_>, src: GlobalBuffer, t: usize, row: usize) -> f64 {
        let x = scope.global(src);
        match &self.matrix {
            DeviceMatrix::Dense { data, dim } => {
                let m = scope.global(*data);
                let mut acc = 0.0;
                let base = row * dim;
                for j in 0..*dim {
                    acc += m.load(base + j) * x.load(self.vidx(j, t));
                }
                acc
            }
            DeviceMatrix::Csr { row_ptr, col_idx, values, .. } => {
                let rp = scope.global(*row_ptr);
                let ci = scope.global(*col_idx);
                let vals = scope.global(*values);
                let start = rp.load(row) as usize;
                let end = rp.load(row + 1) as usize;
                let mut acc = 0.0;
                for k in start..end {
                    let col = ci.load(k) as usize;
                    acc += vals.load(k) * x.load(self.vidx(col, t));
                }
                acc
            }
        }
    }

    /// `(H~ x)_row = ((H x)_row - a_+ x_row) / a_-`.
    #[inline]
    fn scaled_matvec_row(
        &self,
        scope: &BlockScope<'_>,
        src: GlobalBuffer,
        t: usize,
        row: usize,
    ) -> f64 {
        let hx = self.matvec_row(scope, src, t, row);
        let x_row = scope.global(src).load(self.vidx(row, t));
        (hx - self.a_plus * x_row) / self.a_minus
    }

    /// Runs the whole recursion for realization `t` (thread-per-realization
    /// path; one simulated thread does all of this serially, as in the
    /// paper).
    fn run_realization(&self, scope: &BlockScope<'_>, t: usize) {
        let d = self.shape.dim;
        let n_mom = self.shape.num_moments;
        let sr = self.shape.realizations;
        let (s, r) = (t / self.num_random, t % self.num_random);

        // Step (1): generate |r> and set r_prev = r_0.
        let mut stream = RandomStream::new(self.distribution, self.master_seed, s, r);
        {
            let r0 = scope.global(self.r0);
            let va = scope.global(self.va);
            for i in 0..d {
                let xi = stream.next();
                r0.store(self.vidx(i, t), xi);
                va.store(self.vidx(i, t), xi);
            }
        }

        // mu~_0 = <r_0|r_0>.
        let dot_with_r0 = |buf: GlobalBuffer| -> f64 {
            let r0 = scope.global(self.r0);
            let v = scope.global(buf);
            let mut acc = 0.0;
            for i in 0..d {
                acc += r0.load(self.vidx(i, t)) * v.load(self.vidx(i, t));
            }
            acc
        };
        let partials = scope.global(self.partials);
        partials.store(t, dot_with_r0(self.r0));

        // r_1 = H~ r_0  (step 2.1 for n = 1).
        {
            let vb = scope.global(self.vb);
            for i in 0..d {
                let h = self.scaled_matvec_row(scope, self.va, t, i);
                vb.store(self.vidx(i, t), h);
            }
        }
        if n_mom > 1 {
            partials.store(sr + t, dot_with_r0(self.vb));
        }

        // Steps (2.1)/(2.2) for n = 2..N, rotating the three work buffers
        // (va = r_n, vb = r_{n+1}, vc = r_{n+2}) — the paper's pointer swap.
        let mut prev = self.va;
        let mut cur = self.vb;
        let mut next = self.vc;
        for n in 2..n_mom {
            {
                let p = scope.global(prev);
                let nx = scope.global(next);
                for i in 0..d {
                    let h = self.scaled_matvec_row(scope, cur, t, i);
                    nx.store(self.vidx(i, t), 2.0 * h - p.load(self.vidx(i, t)));
                }
            }
            let rotated = prev;
            prev = cur;
            cur = next;
            next = rotated;
            partials.store(n * sr + t, dot_with_r0(cur));
        }
    }

    /// Block-per-realization path: the block's threads partition rows and a
    /// shared-memory tree combines the dot products — structurally the CUDA
    /// kernel the ablation proposes.
    fn run_block_realization(&self, scope: &mut BlockScope<'_>, t: usize) {
        let d = self.shape.dim;
        let n_mom = self.shape.num_moments;
        let sr = self.shape.realizations;
        let bs = scope.block_dim().count();
        let (s, r) = (t / self.num_random, t % self.num_random);

        // RNG is a serial stream: thread 0 generates (the cost model keeps
        // the full RNG flop count; the serialization is negligible next to
        // the N-loop).
        let mut stream = RandomStream::new(self.distribution, self.master_seed, s, r);
        {
            let r0 = scope.global(self.r0);
            let va = scope.global(self.va);
            for i in 0..d {
                let xi = stream.next();
                r0.store(self.vidx(i, t), xi);
                va.store(self.vidx(i, t), xi);
            }
        }
        scope.barrier();

        // Shared-memory tree dot product of `buf` against r0.
        let block_dot = |scope: &mut BlockScope<'_>, buf: GlobalBuffer| -> f64 {
            let partial: Vec<f64> = {
                let r0 = scope.global(self.r0);
                let v = scope.global(buf);
                (0..bs)
                    .map(|tid| {
                        let mut acc = 0.0;
                        let mut i = tid;
                        while i < d {
                            acc += r0.load(self.vidx(i, t)) * v.load(self.vidx(i, t));
                            i += bs;
                        }
                        acc
                    })
                    .collect()
            };
            for (tid, p) in partial.into_iter().enumerate() {
                scope.shared_store(tid, p);
            }
            scope.barrier();
            let mut stride = bs.next_power_of_two() / 2;
            while stride > 0 {
                for tid in 0..stride.min(bs) {
                    if tid + stride < bs {
                        let a = scope.shared_load(tid);
                        let b = scope.shared_load(tid + stride);
                        scope.shared_store(tid, a + b);
                    }
                }
                scope.barrier();
                stride /= 2;
            }
            scope.shared_load(0)
        };

        let mu0 = block_dot(scope, self.r0);
        scope.global(self.partials).store(t, mu0);

        // r_1 = H~ r_0, rows partitioned over threads.
        {
            let vb = scope.global(self.vb);
            for tid in 0..bs {
                let mut i = tid;
                while i < d {
                    let h = self.scaled_matvec_row(scope, self.va, t, i);
                    vb.store(self.vidx(i, t), h);
                    i += bs;
                }
            }
        }
        scope.barrier();
        if n_mom > 1 {
            let mu1 = block_dot(scope, self.vb);
            scope.global(self.partials).store(sr + t, mu1);
        }

        let mut prev = self.va;
        let mut cur = self.vb;
        let mut next = self.vc;
        for n in 2..n_mom {
            {
                let p = scope.global(prev);
                let nx = scope.global(next);
                for tid in 0..bs {
                    let mut i = tid;
                    while i < d {
                        let h = self.scaled_matvec_row(scope, cur, t, i);
                        nx.store(self.vidx(i, t), 2.0 * h - p.load(self.vidx(i, t)));
                        i += bs;
                    }
                }
            }
            scope.barrier();
            let rotated = prev;
            prev = cur;
            cur = next;
            next = rotated;
            let mu = block_dot(scope, cur);
            scope.global(self.partials).store(n * sr + t, mu);
        }
    }
}

impl BlockKernel for MomentGenKernel {
    fn name(&self) -> &'static str {
        "kpm_moment_generation"
    }

    fn execute(&self, scope: &mut BlockScope<'_>) {
        match self.shape.mapping {
            Mapping::ThreadPerRealization => {
                let bs = scope.block_dim().count();
                let block = scope.block_id();
                for lane in 0..bs {
                    let t = block * bs + lane;
                    if t < self.shape.realizations {
                        self.run_realization(scope, t);
                    }
                }
            }
            Mapping::BlockPerRealization => {
                let t = scope.block_id();
                if t < self.shape.realizations {
                    self.run_block_realization(scope, t);
                }
            }
        }
    }

    fn cost(&self, _dims: &LaunchDims) -> KernelCost {
        self.shape.kernel_cost(&self.spec)
    }

    fn shared_words(&self, dims: &LaunchDims) -> usize {
        match self.shape.mapping {
            Mapping::ThreadPerRealization => 0,
            Mapping::BlockPerRealization => dims.threads_per_block(),
        }
    }
}

/// Fig. 4b: `mu_n = sum_t mu~_n[t]`, one block per moment order.
pub struct MomentReduceKernel {
    /// The `N x S*R` partial buffer written by [`MomentGenKernel`].
    pub partials: GlobalBuffer,
    /// Output vector of `N` sums.
    pub output: GlobalBuffer,
    /// Realization count `S*R`.
    pub realizations: usize,
    /// Moment count `N`.
    pub num_moments: usize,
    /// Launch shape (for cost declaration).
    pub shape: MomentLaunchShape,
}

impl BlockKernel for MomentReduceKernel {
    fn name(&self) -> &'static str {
        "kpm_moment_reduce"
    }

    fn execute(&self, scope: &mut BlockScope<'_>) {
        let n = scope.block_id();
        if n >= self.num_moments {
            return;
        }
        let bs = scope.block_dim().count();
        let sr = self.realizations;
        // Grid-stride accumulation into shared memory, then tree-reduce.
        let partial: Vec<f64> = {
            let p = scope.global(self.partials);
            (0..bs)
                .map(|tid| {
                    let mut acc = 0.0;
                    let mut t = tid;
                    while t < sr {
                        acc += p.load(n * sr + t);
                        t += bs;
                    }
                    acc
                })
                .collect()
        };
        for (tid, v) in partial.into_iter().enumerate() {
            scope.shared_store(tid, v);
        }
        scope.barrier();
        let mut stride = bs.next_power_of_two() / 2;
        while stride > 0 {
            for tid in 0..stride.min(bs) {
                if tid + stride < bs {
                    let a = scope.shared_load(tid);
                    let b = scope.shared_load(tid + stride);
                    scope.shared_store(tid, a + b);
                }
            }
            scope.barrier();
            stride /= 2;
        }
        let total = scope.shared_load(0);
        scope.global(self.output).store(n, total);
    }

    fn cost(&self, _dims: &LaunchDims) -> KernelCost {
        self.shape.reduce_cost()
    }

    fn shared_words(&self, dims: &LaunchDims) -> usize {
        dims.threads_per_block()
    }
}
