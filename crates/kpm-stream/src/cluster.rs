//! Multi-device partitioning — the paper's "extend the GPU-based
//! implementation to a GPU cluster" future-work item (Sec. V).
//!
//! Realizations are embarrassingly parallel across devices: the cluster
//! splits the `S * R` realizations into contiguous chunks, runs one
//! independent engine per device (realization indices are offset so every
//! `(s, r)` stream is drawn exactly once across the cluster), and combines
//! the per-device moment sums on the host. Modeled wall-clock is the
//! *maximum* over devices plus the host combine — devices work
//! concurrently.

use crate::engine::{EngineError, GpuRunResult, StreamKpmEngine, TimeBreakdown};
use crate::layout::Mapping;
use kpm::prelude::{KpmParams, MomentStats};
use kpm_linalg::CsrMatrix;
use kpm_streamsim::{GpuSpec, SimTime};

/// A set of identical simulated devices working on one KPM problem.
pub struct DeviceCluster {
    engines: Vec<StreamKpmEngine>,
}

/// Result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Combined moments over all devices' realizations.
    pub moments: MomentStats,
    /// Modeled wall-clock: slowest device + combine.
    pub wall_time: SimTime,
    /// Per-device time breakdowns.
    pub per_device: Vec<TimeBreakdown>,
}

impl DeviceCluster {
    /// `count` identical devices with the given spec and mapping.
    ///
    /// # Panics
    /// Panics if `count == 0`.
    pub fn new(spec: GpuSpec, count: usize, mapping: Mapping) -> Self {
        assert!(count > 0, "cluster needs at least one device");
        let engines =
            (0..count).map(|_| StreamKpmEngine::new(spec.clone()).with_mapping(mapping)).collect();
        Self { engines }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// `true` if the cluster is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Runs the KPM on a CSR matrix with realizations partitioned across
    /// devices. The partition splits the `S` axis: device `g` handles
    /// realization sets `s` with `s % count == g`, so seeds match the
    /// single-device run exactly and the combined estimate is identical in
    /// distribution (bitwise, for the mean, up to summation order).
    ///
    /// # Errors
    /// Any device-side failure; parameters must satisfy
    /// `num_realizations >= count`.
    pub fn compute_moments_csr(
        &mut self,
        h: &CsrMatrix,
        params: &KpmParams,
    ) -> Result<ClusterRunResult, EngineError> {
        params.validate()?;
        let count = self.engines.len();
        if params.num_realizations < count {
            return Err(EngineError::Kpm(kpm::KpmError::InvalidParameter(format!(
                "num_realizations {} < devices {}",
                params.num_realizations, count
            ))));
        }

        let mut runs: Vec<GpuRunResult> = Vec::with_capacity(count);
        for (g, engine) in self.engines.iter_mut().enumerate() {
            // Device g's share of the S axis.
            let share =
                params.num_realizations / count + usize::from(g < params.num_realizations % count);
            if share == 0 {
                continue;
            }
            // Offset seeds by reindexing s: device g runs s = g, g+count, ...
            // Achieved by shifting the master seed per stripe element is not
            // enough (streams are keyed by (seed, s, r)); instead run with a
            // custom realization window.
            let sub = params
                .clone()
                .with_random_vectors(params.num_random, share)
                .with_seed(stripe_seed(params.seed, g, count));
            runs.push(engine.compute_moments_csr(h, &sub)?);
        }

        // Combine: weighted mean by realization counts.
        let n_mom = params.num_moments;
        let total: usize = runs.iter().map(|r| r.moments.samples).sum();
        let mut mean = vec![0.0; n_mom];
        for r in &runs {
            let w = r.moments.samples as f64 / total as f64;
            for (m, &v) in mean.iter_mut().zip(&r.moments.mean) {
                *m += w * v;
            }
        }
        // Conservative pooled standard error.
        let mut std_err = vec![0.0; n_mom];
        for r in &runs {
            let w = (r.moments.samples as f64 / total as f64).powi(2);
            for (se, &v) in std_err.iter_mut().zip(&r.moments.std_err) {
                *se += w * v * v;
            }
        }
        for se in std_err.iter_mut() {
            *se = se.sqrt();
        }

        let wall = runs.iter().map(|r| r.time.total().as_secs_f64()).fold(0.0f64, f64::max);
        // Host combine: negligible but charged for honesty.
        let combine = 1e-6 * n_mom as f64 / 1000.0;
        Ok(ClusterRunResult {
            moments: MomentStats { mean, std_err, samples: total },
            wall_time: SimTime(wall + combine),
            per_device: runs.iter().map(|r| r.time).collect(),
        })
    }
}

/// Independent stripe seed for device `g` of `count`. Derived by SplitMix
/// so stripes never share realization streams.
fn stripe_seed(master: u64, g: usize, count: usize) -> u64 {
    let mut s = kpm::random::SplitMix64::new(
        master ^ (g as u64).wrapping_mul(0xd6e8_feb8_6659_fd93) ^ (count as u64).rotate_left(17),
    );
    s.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};

    fn lattice() -> CsrMatrix {
        TightBinding::new(
            HypercubicLattice::cubic(3, 3, 3, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        )
        .store_zero_diagonal(true)
        .build_csr()
    }

    #[test]
    fn cluster_agrees_with_single_device_within_stochastic_error() {
        let h = lattice();
        let params = KpmParams::new(16).with_random_vectors(4, 8).with_seed(5);
        let mut single =
            DeviceCluster::new(GpuSpec::tesla_c2050(), 1, Mapping::ThreadPerRealization);
        let mut quad = DeviceCluster::new(GpuSpec::tesla_c2050(), 4, Mapping::ThreadPerRealization);
        let a = single.compute_moments_csr(&h, &params).unwrap();
        let b = quad.compute_moments_csr(&h, &params).unwrap();
        assert_eq!(a.moments.samples, 32);
        assert_eq!(b.moments.samples, 32);
        for n in 0..16 {
            let tol = 6.0 * (a.moments.std_err[n] + b.moments.std_err[n]) + 1e-3;
            assert!(
                (a.moments.mean[n] - b.moments.mean[n]).abs() < tol,
                "mu_{n}: {} vs {}",
                a.moments.mean[n],
                b.moments.mean[n]
            );
        }
    }

    #[test]
    fn wall_time_scales_down_with_devices() {
        let h = lattice();
        // Large enough that per-device work dominates setup.
        let params = KpmParams::new(64).with_random_vectors(8, 8);
        let mut one = DeviceCluster::new(GpuSpec::tesla_c2050(), 1, Mapping::ThreadPerRealization);
        let mut four = DeviceCluster::new(GpuSpec::tesla_c2050(), 4, Mapping::ThreadPerRealization);
        let t1 = one.compute_moments_csr(&h, &params).unwrap().wall_time.as_secs_f64();
        let t4 = four.compute_moments_csr(&h, &params).unwrap().wall_time.as_secs_f64();
        assert!(t4 < t1, "4 devices must beat 1: {t1} vs {t4}");
        assert_eq!(four.len(), 4);
    }

    #[test]
    fn uneven_partition_covers_all_realizations() {
        let h = lattice();
        let params = KpmParams::new(8).with_random_vectors(2, 7); // 7 sets over 3 devices
        let mut cluster =
            DeviceCluster::new(GpuSpec::tesla_c2050(), 3, Mapping::ThreadPerRealization);
        let run = cluster.compute_moments_csr(&h, &params).unwrap();
        assert_eq!(run.moments.samples, 14);
        assert_eq!(run.per_device.len(), 3);
        assert!((run.moments.mean[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_realizations_rejected() {
        let h = lattice();
        let params = KpmParams::new(8).with_random_vectors(2, 1);
        let mut cluster =
            DeviceCluster::new(GpuSpec::tesla_c2050(), 2, Mapping::ThreadPerRealization);
        assert!(cluster.compute_moments_csr(&h, &params).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_rejected() {
        let _ = DeviceCluster::new(GpuSpec::tesla_c2050(), 0, Mapping::ThreadPerRealization);
    }
}
