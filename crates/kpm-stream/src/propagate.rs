//! Chebyshev time evolution on the simulated device.
//!
//! The paper's conclusion hopes the GPU KPM will "simulate various quantum
//! states"; this module delivers the dynamics half of that: the Chebyshev
//! propagator `e^{-iHt}` (see `kpm::propagate` for the math) executed as
//! device kernels. The state is complex, stored as split real/imaginary
//! device buffers; each expansion term costs one fused
//! `T_{n+1} = 2 H~ T_n - T_{n-1}` kernel over both components plus an
//! accumulate kernel applying the `(-i)^n J_n(tau)` coefficient.
//!
//! Work mapping: the grid covers the `D` sites (one element per thread),
//! fully coalesced — time evolution has no per-realization axis, so the
//! mapping question of the moment engine does not arise; the device is
//! saturated whenever `D` is large, which is the regime dynamics runs in.

use crate::engine::{DeviceMatrix, EngineError};
use kpm::bessel;
use kpm::prelude::Boundable;
use kpm::propagate::ComplexState;
use kpm_linalg::CsrMatrix;
use kpm_streamsim::kernel::{BlockKernel, BlockScope, KernelCost};
use kpm_streamsim::{Device, Dim3, GlobalBuffer, GpuSpec, LaunchDims, SimTime};

/// How the step kernel combines the matvec with the recursion history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepMode {
    /// `next = H~ cur` (the first step, `T_1 = H~ T_0`).
    First,
    /// `next = 2 H~ cur - prev` (the generic step).
    Recurrence,
}

/// Fused device kernel: one Chebyshev step on one split component.
struct ChebStepKernel {
    matrix: DeviceMatrix,
    cur: GlobalBuffer,
    /// Ignored in [`StepMode::First`] (any valid buffer may be passed).
    prev: GlobalBuffer,
    next: GlobalBuffer,
    dim: usize,
    a_plus: f64,
    a_minus: f64,
    mode: StepMode,
}

impl BlockKernel for ChebStepKernel {
    fn name(&self) -> &'static str {
        "cheb_step"
    }

    fn execute(&self, scope: &mut BlockScope<'_>) {
        let cur = scope.global(self.cur);
        let prev = scope.global(self.prev);
        let next = scope.global(self.next);
        for t in scope.threads() {
            let row = scope.global_thread_id(t);
            if row >= self.dim {
                continue;
            }
            let hx = match &self.matrix {
                DeviceMatrix::Dense { data, dim } => {
                    let m = scope.global(*data);
                    let mut acc = 0.0;
                    for j in 0..*dim {
                        acc += m.load(row * dim + j) * cur.load(j);
                    }
                    acc
                }
                DeviceMatrix::Csr { row_ptr, col_idx, values, .. } => {
                    let rp = scope.global(*row_ptr);
                    let ci = scope.global(*col_idx);
                    let vals = scope.global(*values);
                    let (start, end) = (rp.load(row) as usize, rp.load(row + 1) as usize);
                    let mut acc = 0.0;
                    for k in start..end {
                        acc += vals.load(k) * cur.load(ci.load(k) as usize);
                    }
                    acc
                }
            };
            let scaled = (hx - self.a_plus * cur.load(row)) / self.a_minus;
            let value = match self.mode {
                StepMode::First => scaled,
                StepMode::Recurrence => 2.0 * scaled - prev.load(row),
            };
            next.store(row, value);
        }
    }

    fn cost(&self, _dims: &LaunchDims) -> KernelCost {
        let d = self.dim as u64;
        let stored = self.matrix.stored_entries() as u64;
        KernelCost::new()
            .flops(2 * stored + 5 * d)
            .global_read(8 * (stored + 3 * d))
            .global_write(8 * d)
            .coalescing(0.8)
    }
}

/// Device kernel: `out += c * v` (axpy), used to accumulate each term into
/// the real or imaginary output component.
struct AxpyKernel {
    v: GlobalBuffer,
    out: GlobalBuffer,
    c: f64,
    dim: usize,
}

impl BlockKernel for AxpyKernel {
    fn name(&self) -> &'static str {
        "axpy_term"
    }

    fn execute(&self, scope: &mut BlockScope<'_>) {
        let v = scope.global(self.v);
        let out = scope.global(self.out);
        for t in scope.threads() {
            let i = scope.global_thread_id(t);
            if i < self.dim {
                out.store(i, out.load(i) + self.c * v.load(i));
            }
        }
    }

    fn cost(&self, _dims: &LaunchDims) -> KernelCost {
        let d = self.dim as u64;
        KernelCost::new().flops(2 * d).global_read(16 * d).global_write(8 * d)
    }
}

/// A device-resident Chebyshev propagator for a sparse Hamiltonian.
pub struct DevicePropagator {
    device: Device,
    matrix: DeviceMatrix,
    dim: usize,
    a_plus: f64,
    a_minus: f64,
    tolerance: f64,
    block_size: usize,
}

impl DevicePropagator {
    /// Uploads `h` and prepares the propagator (Gershgorin bounds, 1%
    /// padding, truncation tolerance `tol` on the Bessel coefficients).
    ///
    /// # Errors
    /// Device or bounds errors; a non-positive tolerance.
    pub fn new(spec: GpuSpec, h: &CsrMatrix, tol: f64) -> Result<Self, EngineError> {
        if tol.is_nan() || tol <= 0.0 {
            return Err(EngineError::Kpm(kpm::KpmError::InvalidParameter(
                "tolerance must be positive".into(),
            )));
        }
        let bounds = h.spectral_bounds(kpm::BoundsMethod::Gershgorin)?.padded(0.01);
        let mut device = Device::new(spec);
        device.advance_clock(device.spec().setup_overhead);
        let rp: Vec<f64> = h.row_ptr().iter().map(|&v| v as f64).collect();
        let ci: Vec<f64> = h.col_idx().iter().map(|&v| v as f64).collect();
        let row_ptr = device.alloc(rp.len())?;
        let col_idx = device.alloc(ci.len())?;
        let values = device.alloc(h.values().len())?;
        device.copy_to_device(&rp, row_ptr)?;
        device.copy_to_device(&ci, col_idx)?;
        device.copy_to_device(h.values(), values)?;
        Ok(Self {
            device,
            matrix: DeviceMatrix::Csr { row_ptr, col_idx, values, dim: h.nrows(), nnz: h.nnz() },
            dim: h.nrows(),
            a_plus: bounds.a_plus(),
            a_minus: bounds.a_minus(),
            tolerance: tol,
            block_size: 128,
        })
    }

    /// Total modeled device time so far.
    pub fn elapsed(&self) -> SimTime {
        self.device.elapsed()
    }

    /// The underlying device (for memory/launch inspection).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Evolves `psi` by time `t` on the device, returning the new state.
    ///
    /// # Errors
    /// Device errors (memory, launch).
    ///
    /// # Panics
    /// Panics if `psi.dim()` mismatches the Hamiltonian.
    pub fn evolve(&mut self, psi: &ComplexState, t: f64) -> Result<ComplexState, EngineError> {
        assert_eq!(psi.dim(), self.dim, "state dimension");
        let _span = kpm_obs::span("stream.propagate");
        let d = self.dim;
        let tau = self.a_minus * t;
        let margin = 20.0 + 10.0 * (1.0 / self.tolerance).log10().max(0.0);
        let nmax =
            ((tau.abs() + margin * (1.0 + tau.abs()).sqrt().min(margin)) as usize + 8).max(2);
        let jn = bessel::j_all(nmax, tau);

        let dev = &mut self.device;
        let mut prev_re = dev.alloc(d)?;
        let mut prev_im = dev.alloc(d)?;
        let mut cur_re = dev.alloc(d)?;
        let mut cur_im = dev.alloc(d)?;
        let mut next_re = dev.alloc(d)?;
        let mut next_im = dev.alloc(d)?;
        let out_re = dev.alloc(d)?;
        let out_im = dev.alloc(d)?;

        dev.copy_to_device(&psi.re, prev_re)?;
        dev.copy_to_device(&psi.im, prev_im)?;

        let grid = Dim3::x(d.div_ceil(self.block_size));
        let block = Dim3::x(self.block_size);
        let step = |dev: &mut Device,
                    matrix: DeviceMatrix,
                    cur: GlobalBuffer,
                    prev: GlobalBuffer,
                    next: GlobalBuffer,
                    mode: StepMode,
                    a_plus: f64,
                    a_minus: f64|
         -> Result<(), EngineError> {
            dev.launch(
                &ChebStepKernel { matrix, cur, prev, next, dim: d, a_plus, a_minus, mode },
                grid,
                block,
            )?;
            Ok(())
        };
        let axpy = |dev: &mut Device, v: GlobalBuffer, out: GlobalBuffer, c: f64| {
            if c == 0.0 {
                return Ok::<(), EngineError>(());
            }
            dev.launch(&AxpyKernel { v, out, c, dim: d }, grid, block)?;
            Ok(())
        };

        // n = 0: out = J_0 T_0 psi.
        axpy(dev, prev_re, out_re, jn[0])?;
        axpy(dev, prev_im, out_im, jn[0])?;

        // T_1 = H~ T_0.
        step(
            dev,
            self.matrix,
            prev_re,
            prev_re,
            cur_re,
            StepMode::First,
            self.a_plus,
            self.a_minus,
        )?;
        step(
            dev,
            self.matrix,
            prev_im,
            prev_im,
            cur_im,
            StepMode::First,
            self.a_plus,
            self.a_minus,
        )?;

        for (n, &j) in jn.iter().enumerate().skip(1) {
            // Accumulate 2 (-i)^n J_n * (cur_re + i cur_im) into out.
            let coeff = 2.0 * j;
            match n % 4 {
                0 => {
                    axpy(dev, cur_re, out_re, coeff)?;
                    axpy(dev, cur_im, out_im, coeff)?;
                }
                1 => {
                    // -i * (re + i im) = im - i re.
                    axpy(dev, cur_im, out_re, coeff)?;
                    axpy(dev, cur_re, out_im, -coeff)?;
                }
                2 => {
                    axpy(dev, cur_re, out_re, -coeff)?;
                    axpy(dev, cur_im, out_im, -coeff)?;
                }
                _ => {
                    axpy(dev, cur_im, out_re, -coeff)?;
                    axpy(dev, cur_re, out_im, coeff)?;
                }
            }
            if jn[n..].iter().all(|v| (2.0 * v).abs() <= self.tolerance) {
                break;
            }
            if n + 1 < nmax {
                step(
                    dev,
                    self.matrix,
                    cur_re,
                    prev_re,
                    next_re,
                    StepMode::Recurrence,
                    self.a_plus,
                    self.a_minus,
                )?;
                step(
                    dev,
                    self.matrix,
                    cur_im,
                    prev_im,
                    next_im,
                    StepMode::Recurrence,
                    self.a_plus,
                    self.a_minus,
                )?;
                std::mem::swap(&mut prev_re, &mut cur_re);
                std::mem::swap(&mut prev_im, &mut cur_im);
                std::mem::swap(&mut cur_re, &mut next_re);
                std::mem::swap(&mut cur_im, &mut next_im);
            }
        }

        let mut re = vec![0.0; d];
        let mut im = vec![0.0; d];
        dev.copy_to_host(out_re, &mut re)?;
        dev.copy_to_host(out_im, &mut im)?;

        // Global phase e^{-i a_+ t} (host side, O(D)).
        let (cp, sp) = ((self.a_plus * t).cos(), -(self.a_plus * t).sin());
        for (r, i) in re.iter_mut().zip(im.iter_mut()) {
            let (nr, ni) = (*r * cp - *i * sp, *r * sp + *i * cp);
            *r = nr;
            *i = ni;
        }

        for buf in [prev_re, prev_im, cur_re, cur_im, next_re, next_im, out_re, out_im] {
            dev.free(buf)?;
        }
        Ok(ComplexState { re, im })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm::propagate::Propagator;
    use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};

    fn chain(l: usize) -> CsrMatrix {
        TightBinding::new(
            HypercubicLattice::chain(l, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        )
        .build_csr()
    }

    fn start_state(l: usize) -> ComplexState {
        let mut re = vec![0.0; l];
        re[l / 2] = 1.0;
        ComplexState::from_real(re)
    }

    #[test]
    fn device_evolution_matches_host_propagator() {
        let h = chain(48);
        let psi = start_state(48);
        let t = 3.7;

        let bounds = h.spectral_bounds(kpm::BoundsMethod::Gershgorin).unwrap();
        let host = Propagator::new(&h, bounds, 1e-12).unwrap();
        let expect = host.evolve(&psi, t);

        let mut devp = DevicePropagator::new(GpuSpec::tesla_c2050(), &h, 1e-12).unwrap();
        let got = devp.evolve(&psi, t).unwrap();

        for i in 0..48 {
            assert!(
                (got.re[i] - expect.re[i]).abs() < 1e-9 && (got.im[i] - expect.im[i]).abs() < 1e-9,
                "site {i}: ({}, {}) vs ({}, {})",
                got.re[i],
                got.im[i],
                expect.re[i],
                expect.im[i]
            );
        }
    }

    #[test]
    fn norm_conserved_on_device() {
        let h = chain(64);
        let mut devp = DevicePropagator::new(GpuSpec::tesla_c2050(), &h, 1e-10).unwrap();
        let mut psi = start_state(64);
        for _ in 0..3 {
            psi = devp.evolve(&psi, 1.5).unwrap();
        }
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-8, "norm {}", psi.norm_sqr());
    }

    #[test]
    fn modeled_time_accumulates_per_launch() {
        let h = chain(32);
        let mut devp = DevicePropagator::new(GpuSpec::tesla_c2050(), &h, 1e-8).unwrap();
        let t0 = devp.elapsed().as_secs_f64();
        let _ = devp.evolve(&start_state(32), 2.0).unwrap();
        let t1 = devp.elapsed().as_secs_f64();
        assert!(t1 > t0);
        // Many small launches: records exist for both kernel types.
        let names: std::collections::HashSet<&str> =
            devp.device().launches().iter().map(|l| l.name).collect();
        assert!(names.contains("cheb_step"));
        assert!(names.contains("axpy_term"));
    }

    #[test]
    fn device_memory_released_after_evolve() {
        let h = chain(32);
        let mut devp = DevicePropagator::new(GpuSpec::tesla_c2050(), &h, 1e-8).unwrap();
        let baseline = devp.device().mem_in_use();
        let _ = devp.evolve(&start_state(32), 1.0).unwrap();
        assert_eq!(devp.device().mem_in_use(), baseline, "state buffers must be freed");
    }

    #[test]
    fn invalid_tolerance_rejected() {
        let h = chain(8);
        assert!(DevicePropagator::new(GpuSpec::tesla_c2050(), &h, 0.0).is_err());
    }
}
