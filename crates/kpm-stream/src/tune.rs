//! Block-size autotuning — the paper's first future-work item
//! ("a method to find the best block size used in the GPU", Sec. V).
//!
//! Sweeps candidate `BLOCK_SIZE`s and returns the fastest — the same probe
//! protocol `kpm::tune` runs on the real machine (candidate grid, time each
//! one, keep the measured minimum), here priced on the modeled device. The
//! model captures the real trade-off: blocks that are not warp multiples
//! waste lanes; very small blocks cap resident warps; very large blocks
//! reduce scheduling granularity (wave quantization).
//!
//! Candidates are priced through the event-queue device pipeline
//! ([`kpm_streamsim::queue::MomentRunPlan`]) with transfer/compute overlap
//! on — what the modeled device actually does. The retired overlap-off
//! analytic chain survives only as the deprecated
//! [`tune_block_size_analytic`] shim (the same pattern `cost.rs` used when
//! the closed-form model moved into the pipeline).

use crate::cost::MomentLaunchShape;
use kpm_streamsim::{GpuSpec, SimTime};

/// One candidate evaluated by the tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePoint {
    /// Threads per block evaluated.
    pub block_size: usize,
    /// Modeled run time at this block size.
    pub time: SimTime,
}

/// Result of a tuning sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning block size.
    pub best: usize,
    /// All evaluated candidates, in evaluation order.
    pub points: Vec<TunePoint>,
}

/// Default candidate list: powers of two from one warp to the device
/// maximum, plus deliberately misaligned sizes so the sweep demonstrates
/// the warp-alignment penalty.
pub fn default_candidates(spec: &GpuSpec) -> Vec<usize> {
    let mut c = Vec::new();
    let mut b = spec.warp_size;
    while b <= spec.max_threads_per_block {
        c.push(b);
        b *= 2;
    }
    for misaligned in [48usize, 96, 100, 160, 224] {
        if misaligned <= spec.max_threads_per_block {
            c.push(misaligned);
        }
    }
    c
}

/// Sweeps `candidates` (or the defaults) for the given shape and returns
/// the fastest block size, priced through the overlapping event-queue
/// pipeline — the launch actually modeled by the device.
///
/// # Panics
/// Panics if the candidate list resolves to empty.
pub fn tune_block_size(
    spec: &GpuSpec,
    shape: &MomentLaunchShape,
    compute_efficiency: f64,
    candidates: Option<&[usize]>,
) -> TuneResult {
    sweep(spec, shape, compute_efficiency, candidates, true)
}

/// [`tune_block_size`] priced on the retired overlap-off analytic chain
/// (strict `setup + upload + generation + reduction + download` sum).
#[deprecated(note = "the overlap-off analytic pricing is retired; use `tune_block_size` \
            (pipelined) or price `kpm_streamsim::StageTimes` directly")]
pub fn tune_block_size_analytic(
    spec: &GpuSpec,
    shape: &MomentLaunchShape,
    compute_efficiency: f64,
    candidates: Option<&[usize]>,
) -> TuneResult {
    sweep(spec, shape, compute_efficiency, candidates, false)
}

fn sweep(
    spec: &GpuSpec,
    shape: &MomentLaunchShape,
    compute_efficiency: f64,
    candidates: Option<&[usize]>,
    overlap: bool,
) -> TuneResult {
    let defaults;
    let list: &[usize] = match candidates {
        Some(c) => c,
        None => {
            defaults = default_candidates(spec);
            &defaults
        }
    };
    assert!(!list.is_empty(), "no block-size candidates");
    let mut points = Vec::with_capacity(list.len());
    for &b in list {
        let candidate = MomentLaunchShape { block_size: b, ..*shape };
        points.push(TunePoint {
            block_size: b,
            time: kpm_streamsim::queue::MomentRunPlan::new(candidate)
                .with_overlap(overlap)
                .total(spec, compute_efficiency),
        });
    }
    let best = points
        .iter()
        .min_by(|a, b| a.time.as_secs_f64().total_cmp(&b.time.as_secs_f64()))
        .expect("nonempty candidates")
        .block_size;
    TuneResult { best, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Precision;
    use crate::layout::{Mapping, VectorLayout};

    fn paper_shape() -> MomentLaunchShape {
        MomentLaunchShape {
            dim: 1000,
            stored_entries: 7000,
            dense: false,
            format: crate::cost::SparseFormat::Csr,
            num_moments: 512,
            realizations: 1792,
            mapping: Mapping::ThreadPerRealization,
            layout: VectorLayout::Interleaved,
            block_size: 128,
            precision: Precision::Double,
        }
    }

    #[test]
    fn candidates_cover_warp_to_max() {
        let spec = GpuSpec::tesla_c2050();
        let c = default_candidates(&spec);
        assert!(c.contains(&32));
        assert!(c.contains(&1024));
        assert!(c.contains(&100), "needs misaligned probes");
    }

    #[test]
    fn oversized_blocks_starve_sms() {
        // With only S*R = 1792 threads total, BLOCK_SIZE beyond 128 leaves
        // streaming multiprocessors idle (1792/1024 = 2 blocks on 14 SMs) —
        // the one strong lever the paper's future-work tuner would find.
        let spec = GpuSpec::tesla_c2050();
        let result = tune_block_size(&spec, &paper_shape(), 0.2, None);
        assert_eq!(result.points.len(), default_candidates(&spec).len());
        let by_size =
            |b: usize| result.points.iter().find(|p| p.block_size == b).unwrap().time.as_secs_f64();
        let best_t = by_size(result.best);
        assert!(
            by_size(1024) > 1.2 * best_t,
            "2-block launch must lose to the winner: {} vs {best_t}",
            by_size(1024)
        );
        // In the covered regime (<= 128) the choice is nearly flat: the
        // launch is latency-bound at ~4 warps/SM regardless.
        let small: Vec<f64> = [32, 64, 128].iter().map(|&b| by_size(b)).collect();
        let (lo, hi) = (
            small.iter().cloned().fold(f64::INFINITY, f64::min),
            small.iter().cloned().fold(0.0f64, f64::max),
        );
        assert!(hi < 1.3 * lo, "covered regime should be flat: {lo} .. {hi}");
    }

    #[test]
    fn warp_misalignment_costs_against_same_warp_count() {
        // 100 threads schedule as 4 warps with 28 idle lanes; 96 threads
        // fill 3 warps exactly. Same-ish resident warps, so 100 loses.
        let spec = GpuSpec::tesla_c2050();
        let result = tune_block_size(&spec, &paper_shape(), 0.2, Some(&[96, 100, 128]));
        let by_size =
            |b: usize| result.points.iter().find(|p| p.block_size == b).unwrap().time.as_secs_f64();
        assert!(by_size(100) >= by_size(96), "100 wastes 28 lanes of its 4th warp");
        assert_ne!(result.best, 100, "a misaligned size must not win this sweep");
    }

    #[test]
    #[allow(deprecated)]
    fn analytic_shim_prices_the_serial_chain() {
        // The deprecated shim reproduces the retired overlap-off pricing,
        // and the pipelined default can only hide transfer time — so for
        // every candidate the pipelined price is <= the analytic one.
        let spec = GpuSpec::tesla_c2050();
        let piped = tune_block_size(&spec, &paper_shape(), 0.2, None);
        let serial = tune_block_size_analytic(&spec, &paper_shape(), 0.2, None);
        assert_eq!(piped.points.len(), serial.points.len());
        for (p, s) in piped.points.iter().zip(&serial.points) {
            assert_eq!(p.block_size, s.block_size);
            assert!(
                p.time.as_secs_f64() <= s.time.as_secs_f64() + 1e-12,
                "overlap made block {} slower: {} vs {}",
                p.block_size,
                p.time.as_secs_f64(),
                s.time.as_secs_f64()
            );
        }
    }

    #[test]
    fn explicit_candidates_respected() {
        let spec = GpuSpec::tesla_c2050();
        let result = tune_block_size(&spec, &paper_shape(), 0.2, Some(&[64]));
        assert_eq!(result.best, 64);
        assert_eq!(result.points.len(), 1);
    }

    #[test]
    fn tuning_helps_the_block_mapping_too() {
        let spec = GpuSpec::tesla_c2050();
        let shape = MomentLaunchShape {
            mapping: Mapping::BlockPerRealization,
            layout: VectorLayout::Contiguous,
            ..paper_shape()
        };
        let result = tune_block_size(&spec, &shape, 0.2, None);
        // Some aligned size wins and beats a one-warp block.
        let worst_small =
            result.points.iter().find(|p| p.block_size == 32).unwrap().time.as_secs_f64();
        let best =
            result.points.iter().find(|p| p.block_size == result.best).unwrap().time.as_secs_f64();
        assert!(best <= worst_small);
    }
}
