//! Compatibility shim: the launch-shape cost formulas moved into the
//! simulator crate ([`kpm_streamsim::shape`]) so the command-queue pipeline
//! ([`kpm_streamsim::queue`]) and the `kpm::device` backends can price
//! launches without a dependency cycle. Everything is re-exported here at
//! its old paths; the tests moved with the code.

pub use kpm_streamsim::shape::{MomentLaunchShape, Precision, SparseFormat};
