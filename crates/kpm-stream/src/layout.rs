//! Compatibility shim: work mapping and vector layout moved into the
//! simulator crate ([`kpm_streamsim::layout`]) alongside the cost formulas
//! that consume them. Re-exported here at the old paths.

pub use kpm_streamsim::layout::{Mapping, VectorLayout};
