//! Property-based tests for the stream-KPM engine and its cost model.

use kpm::moments::KpmParams;
use kpm::rescale::{rescale, Boundable};
use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_stream::cost::{MomentLaunchShape, Precision, SparseFormat};
use kpm_stream::{Mapping, StreamKpmEngine, VectorLayout};
use kpm_streamsim::queue::MomentRunPlan;
use kpm_streamsim::GpuSpec;
use proptest::prelude::*;

/// Overlap-off pipeline pricing, the successor of the retired
/// `estimate_total` (bit-identical to it).
fn total(s: &MomentLaunchShape, spec: &GpuSpec, eff: f64) -> f64 {
    MomentRunPlan::new(*s).with_overlap(false).total(spec, eff).as_secs_f64()
}

fn shape(dim: usize, n: usize, reals: usize, mapping: Mapping, block: usize) -> MomentLaunchShape {
    MomentLaunchShape {
        dim,
        stored_entries: 7 * dim,
        dense: false,
        format: SparseFormat::Csr,
        num_moments: n,
        realizations: reals,
        mapping,
        layout: VectorLayout::natural_for(mapping),
        block_size: block,
        precision: Precision::Double,
    }
}

proptest! {
    #[test]
    fn estimates_are_monotone_in_n_and_realizations(
        dim in 64usize..4096,
        n in 4usize..512,
        reals in 16usize..4000,
        block_pow in 5u32..9,
    ) {
        let spec = GpuSpec::tesla_c2050();
        let block = 1usize << block_pow;
        for mapping in [Mapping::ThreadPerRealization, Mapping::BlockPerRealization] {
            let base = shape(dim, n, reals, mapping, block);
            let t0 = total(&base, &spec, 0.2);
            let more_n = shape(dim, 2 * n, reals, mapping, block);
            let more_r = shape(dim, n, 2 * reals, mapping, block);
            // Allow a hair of slack: occupancy improvements from extra
            // realizations can almost exactly offset the added work in the
            // latency-bound regime.
            prop_assert!(total(&more_n, &spec, 0.2) >= t0 * 0.999);
            prop_assert!(total(&more_r, &spec, 0.2) >= t0 * 0.999);
            prop_assert!(t0.is_finite() && t0 > 0.0);
        }
    }

    #[test]
    fn declared_flops_match_workload_accounting(
        dim in 8usize..512,
        n in 2usize..256,
        reals in 1usize..256,
    ) {
        // The GPU cost formula and the CPU workload formulas must agree on
        // the fundamental operation count (they price the same algorithm).
        let s = shape(dim, n, reals, Mapping::ThreadPerRealization, 128);
        let w = kpm::workload::KpmWorkload {
            dim,
            stored_entries: 7 * dim,
            num_moments: n,
            realizations: reals,
        };
        prop_assert_eq!(s.flops(), w.total_profile().flops);
    }

    #[test]
    fn device_memory_formula_linear_in_realizations(
        dim in 8usize..512,
        n in 2usize..128,
        reals in 1usize..512,
    ) {
        let s1 = shape(dim, n, reals, Mapping::ThreadPerRealization, 128);
        let s2 = shape(dim, n, 2 * reals, Mapping::ThreadPerRealization, 128);
        // Everything except the matrix scales with realizations.
        let matrix = s1.matrix_bytes();
        prop_assert_eq!(
            2 * (s1.device_bytes() - matrix) ,
            s2.device_bytes() - matrix + 8 * n as u64 // reduced buffer doesn't scale
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn engine_matches_cpu_reference_for_random_small_problems(
        l in 2usize..5,
        n in 2usize..12,
        seed in 0u64..50,
    ) {
        let h = TightBinding::new(
            HypercubicLattice::cubic(l, l, l, Boundary::Periodic),
            1.0,
            OnSite::Disorder { width: 1.5, seed },
        )
        .build_csr();
        let params = KpmParams::new(n).with_random_vectors(2, 2).with_seed(seed);
        let bounds = h.spectral_bounds(params.bounds).unwrap();
        let rescaled = rescale(&h, bounds.padded(params.padding), 0.0).unwrap();
        let cpu = kpm::moments::stochastic_moments(&rescaled, &params);
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let gpu = engine.compute_moments_csr(&h, &params).unwrap();
        for i in 0..n {
            let scale = 1.0 + cpu.mean[i].abs();
            prop_assert!((cpu.mean[i] - gpu.moments.mean[i]).abs() < 1e-9 * scale,
                "mu_{}: {} vs {}", i, cpu.mean[i], gpu.moments.mean[i]);
        }
    }
}
