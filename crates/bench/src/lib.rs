//! Benchmark harness for the figure reproductions.
//!
//! The paper's evaluation (Sec. IV) consists of four figures; this crate
//! regenerates each one:
//!
//! | Artifact | Module entry point | What it sweeps |
//! |----------|--------------------|----------------|
//! | Fig. 5 | [`figures::fig5`] | N ∈ {128..1024}, sparse 10×10×10 lattice |
//! | Fig. 6 | [`figures::fig6`] | DoS curves at N = 256 vs N = 512 |
//! | Fig. 7 | [`figures::fig7`] | N ∈ {128..2048}, dense H_SIZE = 128 |
//! | Fig. 8 | [`figures::fig8`] | H_SIZE ∈ {512..4096}, dense, N = 128 |
//! | Ablations | [`figures::ablations`] | mapping / layout / kernel / recursion / cluster |
//!
//! Timing semantics: CPU times come from the cache-aware Core i7 930 model
//! ([`cpu::cpu_run_time`]); GPU times come from the Tesla C2050 device
//! model priced over the exact kernel launches the engine performs. Both
//! are *modeled* times at the paper's full parameter scale (see DESIGN.md
//! §2 for why, and EXPERIMENTS.md for the measured-vs-paper comparison).
//! The Criterion benches in `benches/` additionally measure real wall-time
//! of the functional implementations at reduced scale.

pub mod cpu;
pub mod figures;
pub mod report;

pub use cpu::cpu_run_time;
