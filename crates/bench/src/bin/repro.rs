//! Regenerates every evaluation artifact of the paper.
//!
//! ```text
//! repro fig5            # Fig. 5: lattice sweep over N (times + speedup)
//! repro fig6 [--full]   # Fig. 6: DoS curves N = 256 vs 512 (+ ASCII plot)
//! repro fig7            # Fig. 7: dense N sweep
//! repro fig8            # Fig. 8: dense H_SIZE sweep
//! repro ablations       # mapping / layout / recursion / cluster / kernels
//! repro devices         # 1..8-device scaling through the event pipeline
//! repro all [--full]    # everything
//! ```
//!
//! Tables print to stdout; CSVs land in `results/` (override with
//! `--out DIR`). CPU/GPU times are modeled at the paper's full parameter
//! scale (S*R = 1792) — see DESIGN.md §2 and EXPERIMENTS.md.

use kpm_bench::figures::{self, SpeedupRow};
use kpm_bench::report::{ascii_plot, fmt_secs, Table};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    let mut full = false;
    let mut command = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--full" => full = true,
            "fig5" | "fig6" | "fig7" | "fig8" | "ablations" | "devices" | "all" => {
                command = Some(a.clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    let Some(command) = command else {
        return usage();
    };

    match command.as_str() {
        "fig5" => traced("fig5", &out_dir, || fig5(&out_dir)),
        "fig6" => traced("fig6", &out_dir, || fig6(&out_dir, full)),
        "fig7" => traced("fig7", &out_dir, || fig7(&out_dir)),
        "fig8" => traced("fig8", &out_dir, || fig8(&out_dir)),
        "ablations" => traced("ablations", &out_dir, || ablations(&out_dir)),
        "devices" => traced("devices", &out_dir, || devices(&out_dir)),
        "all" => {
            traced("fig5", &out_dir, || fig5(&out_dir));
            traced("fig6", &out_dir, || fig6(&out_dir, full));
            traced("fig7", &out_dir, || fig7(&out_dir));
            traced("fig8", &out_dir, || fig8(&out_dir));
            traced("ablations", &out_dir, || ablations(&out_dir));
            traced("devices", &out_dir, || devices(&out_dir));
        }
        _ => unreachable!(),
    }
    ExitCode::SUCCESS
}

/// Runs one figure command inside a trace session and writes the recorded
/// spans/counters to `BENCH_<name>.json` next to the CSVs — the machine
/// summary of where the regeneration spent its time (the span glossary is
/// in the README's Observability section).
fn traced(name: &str, out: &Path, body: impl FnOnce()) {
    let handle = kpm::obs::TraceHandle::begin();
    {
        let _span = kpm::obs::span_labeled("bench.figure", name);
        body();
    }
    let mut report = handle.finish();
    report.command = format!("repro {name}");
    let path = out.join(format!("BENCH_{name}.json"));
    let write = std::fs::create_dir_all(out).and_then(|()| report.write_json(&path));
    match write {
        Ok(()) => println!("wrote {}\n", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}\n", path.display()),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: repro <fig5|fig6|fig7|fig8|ablations|devices|all> [--full] [--out DIR]");
    ExitCode::FAILURE
}

fn speedup_table(title: &str, xlabel: &str, rows: &[SpeedupRow], out: &Path, file: &str) {
    let mut t = Table::new(&[xlabel, "cpu_s", "gpu_s", "speedup"]);
    for r in rows {
        t.row(vec![
            r.x.to_string(),
            format!("{:.4}", r.cpu_s),
            format!("{:.4}", r.gpu_s),
            format!("{:.2}", r.speedup()),
        ]);
    }
    println!("== {title} ==");
    println!("{}", t.render());
    let path = out.join(file);
    match t.write_csv(&path) {
        Ok(()) => println!("wrote {}\n", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}\n", path.display()),
    }
}

fn fig5(out: &Path) {
    let rows = figures::fig5(&[128, 256, 512, 1024]);
    speedup_table(
        "Fig. 5 — 10x10x10 cubic lattice (D = 1000, sparse), S*R = 1792",
        "N",
        &rows,
        out,
        "fig5.csv",
    );
    summarize_speedups(&rows, "paper reports ~3.5x, flat in N");
}

fn fig7(out: &Path) {
    let rows = figures::fig7(&[128, 256, 512, 1024, 2048]);
    speedup_table(
        "Fig. 7 — dense H_SIZE = 128, sweeping N (compute-bound)",
        "N",
        &rows,
        out,
        "fig7.csv",
    );
    summarize_speedups(&rows, "paper reports speedup rising to ~4x with N");
}

fn fig8(out: &Path) {
    let rows = figures::fig8(&[512, 1024, 2048, 4096]);
    speedup_table(
        "Fig. 8 — dense H~, sweeping H_SIZE at N = 128 (memory-bound)",
        "H_SIZE",
        &rows,
        out,
        "fig8.csv",
    );
    summarize_speedups(&rows, "paper reports ~4x across H_SIZE");
}

fn summarize_speedups(rows: &[SpeedupRow], paper: &str) {
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    println!(
        "   speedup {:.2}x at {} -> {:.2}x at {}   ({paper})\n",
        first.speedup(),
        first.x,
        last.speedup(),
        last.x
    );
}

fn fig6(out: &Path, full: bool) {
    let s = if full { figures::PAPER_S } else { 8 };
    println!(
        "== Fig. 6 — DoS of the 10x10x10 lattice, N = 256 vs 512 (S = {s}, R = {}) ==",
        figures::PAPER_R
    );
    let data = figures::fig6(s);
    println!(
        "{}",
        ascii_plot(
            &data.energies_high,
            &[("N=512", &data.rho_high), ("N=256", &data.rho_low)],
            96,
            20,
        )
    );
    let mut t = Table::new(&["energy", "rho_n256", "rho_n512"]);
    // Emit on the high-resolution grid; the low curve is linearly
    // interpolated (both grids are dense — negligible error).
    for (i, &e) in data.energies_high.iter().enumerate() {
        let lo = interp(&data.energies_low, &data.rho_low, e);
        t.row(vec![format!("{e:.5}"), format!("{lo:.6}"), format!("{:.6}", data.rho_high[i])]);
    }
    let path = out.join("fig6.csv");
    match t.write_csv(&path) {
        Ok(()) => println!("wrote {} ({} realizations)\n", path.display(), data.realizations),
        Err(e) => eprintln!("failed to write {}: {e}\n", path.display()),
    }
}

fn interp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    match xs.binary_search_by(|v| v.total_cmp(&x)) {
        Ok(i) => ys[i],
        Err(0) => ys[0],
        Err(i) if i >= xs.len() => *ys.last().expect("nonempty"),
        Err(i) => {
            let (x0, x1) = (xs[i - 1], xs[i]);
            ys[i - 1] + (ys[i] - ys[i - 1]) * (x - x0) / (x1 - x0)
        }
    }
}

fn ablations(out: &Path) {
    println!("== Ablations (beyond the paper; DESIGN.md experiment index) ==");
    let rows = figures::ablations();
    let mut t = Table::new(&["comparison", "baseline", "variant", "gain"]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            fmt_secs(r.baseline),
            fmt_secs(r.variant),
            format!("{:.2}x", r.ratio()),
        ]);
    }
    println!("{}", t.render());
    let path = out.join("ablations.csv");
    if let Err(e) = t.write_csv(&path) {
        eprintln!("failed to write {}: {e}", path.display());
    }

    print_kernel_quality(out);
}

fn devices(out: &Path) {
    println!("== Device scaling — Fig. 5 workload at N = 1024, event-pipeline split ==");
    let rows = figures::device_scaling(&[1, 2, 4, 8]);
    let mut t = Table::new(&["devices", "mapping", "modeled_seconds", "speedup"]);
    for r in &rows {
        t.row(vec![
            r.devices.to_string(),
            figures::mapping_label(r.mapping).to_string(),
            format!("{:.6}", r.modeled_s),
            format!("{:.3}", r.speedup),
        ]);
    }
    println!("{}", t.render());
    let path = out.join("ablation_devices.csv");
    match t.write_csv(&path) {
        Ok(()) => println!("wrote {}\n", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}\n", path.display()),
    }
}

fn print_kernel_quality(out: &Path) {
    println!("-- kernel quality: negative DoS mass on a gapped spectrum --");
    let mut kq = Table::new(&["kernel", "negative_mass_fraction"]);
    for (name, neg) in figures::kernel_quality() {
        kq.row(vec![name, format!("{neg:.3e}")]);
    }
    println!("{}", kq.render());
    let path = out.join("kernel_quality.csv");
    match kq.write_csv(&path) {
        Ok(()) => println!("wrote {}\n", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}\n", path.display()),
    }
}
