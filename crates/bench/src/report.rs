//! Terminal tables, ASCII plots, and CSV output for the repro binary.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple fixed-width table renderer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:>w$}");
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    /// I/O errors from file creation/writing.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut s = String::new();
        s.push_str(&self.headers.join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        fs::write(path, s)
    }
}

/// Renders an ASCII line plot of `series` (one or two curves over a shared
/// x grid) of the given terminal size. Intended for quick visual checks of
/// the Fig. 6 DoS curves.
pub fn ascii_plot(x: &[f64], series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "plot too small");
    assert!(!x.is_empty() && !series.is_empty(), "nothing to plot");
    let (xmin, xmax) = (x[0], *x.last().expect("nonempty"));
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &v in ys.iter() {
            ymin = ymin.min(v);
            ymax = ymax.max(v);
        }
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    let marks = ['*', '+', 'o', 'x'];
    for (si, (_, ys)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (&xv, &yv) in x.iter().zip(ys.iter()) {
            let cx = ((xv - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((yv - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "y: {ymin:.3} .. {ymax:.3}");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    let _ = writeln!(out, "x: {xmin:.3} .. {xmax:.3}");
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", marks[si % marks.len()], name);
    }
    out
}

/// Formats seconds adaptively (`ms` below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 100.0 {
        format!("{s:.2} s")
    } else {
        format!("{s:.0} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["N", "cpu", "gpu"]);
        t.row(vec!["128".into(), "1.5".into(), "0.4".into()]);
        t.row(vec!["1024".into(), "12.0".into(), "3.1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('N'));
        assert!(lines[1].starts_with('-'));
        // Right-aligned numbers: both data rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_checks_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        let dir = std::env::temp_dir().join("kpm_bench_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2.5\n");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn plot_contains_marks_and_legend() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let y1: Vec<f64> = x.iter().map(|v| v.sin()).collect();
        let y2: Vec<f64> = x.iter().map(|v| v.cos()).collect();
        let p = ascii_plot(&x, &[("sin", &y1), ("cos", &y2)], 60, 12);
        assert!(p.contains('*'));
        assert!(p.contains('+'));
        assert!(p.contains("sin"));
        assert!(p.contains("y: "));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(2.345), "2.35 s");
        assert_eq!(fmt_secs(432.1), "432 s");
    }
}
