//! Data generators for every evaluation artifact of the paper.

use crate::cpu::cpu_run_time;
use kpm::prelude::*;
use kpm::workload::KpmWorkload;
use kpm_lattice::paper_cubic_hamiltonian;
use kpm_stream::{Mapping, StreamKpmEngine, VectorLayout};
use kpm_streamsim::{CpuSpec, GpuSpec, MomentLaunchShape, MomentRunPlan};

/// The paper's realization load: R = 14, S = 128 (Sec. IV; only the
/// product `S * R = 1792` matters — see DESIGN.md §1).
pub const PAPER_R: usize = 14;
pub const PAPER_S: usize = 128;
/// `S * R`.
pub const PAPER_SR: usize = PAPER_R * PAPER_S;

/// One point of a CPU-vs-GPU sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupRow {
    /// Swept parameter (N for Figs. 5/7, H_SIZE for Fig. 8).
    pub x: usize,
    /// Modeled CPU time, seconds.
    pub cpu_s: f64,
    /// Modeled GPU time, seconds.
    pub gpu_s: f64,
}

impl SpeedupRow {
    /// `cpu / gpu`, the quantity the paper plots as "speedup".
    pub fn speedup(&self) -> f64 {
        self.cpu_s / self.gpu_s
    }
}

fn default_engine() -> StreamKpmEngine {
    StreamKpmEngine::new(GpuSpec::tesla_c2050())
}

/// Calibrated compute-efficiency knob shared by every modeled point (the
/// stream engine's default).
const EFFICIENCY: f64 = 0.2;

/// Modeled GPU time for `shape` on `engine`'s device, via the overlap-off
/// event pipeline (bitwise equal to the retired analytic estimate — pinned
/// in kpm-streamsim's tests).
fn pipeline_secs(engine: &StreamKpmEngine, shape: MomentLaunchShape) -> f64 {
    MomentRunPlan::new(shape)
        .with_overlap(false)
        .total(engine.device().spec(), EFFICIENCY)
        .as_secs_f64()
}

/// Fig. 5: the 10×10×10 lattice (D = 1000, 7 stored entries/row, sparse),
/// N swept over `ns` (paper: 128, 256, 512, 1024).
pub fn fig5(ns: &[usize]) -> Vec<SpeedupRow> {
    let cpu_spec = CpuSpec::core_i7_930();
    let engine = default_engine();
    ns.iter()
        .map(|&n| {
            let w = KpmWorkload {
                dim: 1000,
                stored_entries: 7000,
                num_moments: n,
                realizations: PAPER_SR,
            };
            let shape = engine.shape_for(1000, 7000, false, n, PAPER_SR);
            SpeedupRow {
                x: n,
                cpu_s: cpu_run_time(&w, &cpu_spec).as_secs_f64(),
                gpu_s: pipeline_secs(&engine, shape),
            }
        })
        .collect()
}

/// Fig. 7: dense H_SIZE = 128, N swept (paper: 128..2048).
pub fn fig7(ns: &[usize]) -> Vec<SpeedupRow> {
    let cpu_spec = CpuSpec::core_i7_930();
    let engine = default_engine();
    ns.iter()
        .map(|&n| {
            let w = KpmWorkload {
                dim: 128,
                stored_entries: 128 * 128,
                num_moments: n,
                realizations: PAPER_SR,
            };
            let shape = engine.shape_for(128, 128 * 128, true, n, PAPER_SR);
            SpeedupRow {
                x: n,
                cpu_s: cpu_run_time(&w, &cpu_spec).as_secs_f64(),
                gpu_s: pipeline_secs(&engine, shape),
            }
        })
        .collect()
}

/// Fig. 8: dense H_SIZE swept (paper: 512..4096), N = 128.
pub fn fig8(dims: &[usize]) -> Vec<SpeedupRow> {
    let cpu_spec = CpuSpec::core_i7_930();
    let engine = default_engine();
    dims.iter()
        .map(|&d| {
            let w = KpmWorkload {
                dim: d,
                stored_entries: d * d,
                num_moments: 128,
                realizations: PAPER_SR,
            };
            let shape = engine.shape_for(d, d * d, true, 128, PAPER_SR);
            SpeedupRow {
                x: d,
                cpu_s: cpu_run_time(&w, &cpu_spec).as_secs_f64(),
                gpu_s: pipeline_secs(&engine, shape),
            }
        })
        .collect()
}

/// Fig. 6 data: two DoS curves of the paper lattice at different
/// truncation orders.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// Energy grid (original axis) of the low-resolution curve.
    pub energies_low: Vec<f64>,
    /// DoS at `n_low`.
    pub rho_low: Vec<f64>,
    /// Energy grid of the high-resolution curve.
    pub energies_high: Vec<f64>,
    /// DoS at `n_high`.
    pub rho_high: Vec<f64>,
    /// Truncation orders used.
    pub orders: (usize, usize),
    /// Realizations actually used (reduced by default; see
    /// [`fig6`]).
    pub realizations: usize,
}

/// Fig. 6: DoS of the 10×10×10 lattice at N = 256 vs N = 512, Jackson
/// kernel, computed *functionally* on the simulated device.
///
/// `realization_sets` is the paper's `S` (it used 128). The repro binary
/// defaults to `S = 8` (→ 112 realizations), which produces visually
/// identical curves — the stochastic error `~ 1/sqrt(S R D)` is already
/// ≲ 0.3% — in a fraction of the time; the reduction is recorded in the
/// output.
pub fn fig6(realization_sets: usize) -> Fig6Data {
    let h = paper_cubic_hamiltonian();
    let s = realization_sets;
    let run = |n: usize| {
        let params = KpmParams::new(n)
            .with_random_vectors(PAPER_R, s)
            .with_grid_points(1024)
            .with_seed(0xf166);
        let mut engine = default_engine();
        let (dos, _) = engine.compute_dos_csr(&h, &params).expect("fig6 run");
        (dos.energies, dos.rho)
    };
    let (e_low, r_low) = run(256);
    let (e_high, r_high) = run(512);
    Fig6Data {
        energies_low: e_low,
        rho_low: r_low,
        energies_high: e_high,
        rho_high: r_high,
        orders: (256, 512),
        realizations: PAPER_R * s,
    }
}

/// One ablation comparison row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// What is being compared.
    pub label: String,
    /// Modeled or measured value for the baseline configuration.
    pub baseline: f64,
    /// Value for the variant.
    pub variant: f64,
    /// Unit for display.
    pub unit: &'static str,
}

impl AblationRow {
    /// `baseline / variant` (>1 means the variant wins for time-like
    /// units).
    pub fn ratio(&self) -> f64 {
        self.baseline / self.variant
    }
}

/// The ablation suite (beyond the paper; see DESIGN.md experiment index):
/// work mapping, vector layout, recursion strategy, and cluster scaling.
pub fn ablations() -> Vec<AblationRow> {
    let gpu = GpuSpec::tesla_c2050();
    let cpu = CpuSpec::core_i7_930();
    let mut rows = Vec::new();

    // 1. Mapping: paper's thread-per-realization vs block-per-realization,
    //    on the Fig. 5 workload at N = 1024.
    let paper_engine = default_engine();
    let block_engine = StreamKpmEngine::new(gpu.clone()).with_mapping(Mapping::BlockPerRealization);
    let shape_paper = paper_engine.shape_for(1000, 7000, false, 1024, PAPER_SR);
    let shape_block = block_engine.shape_for(1000, 7000, false, 1024, PAPER_SR);
    rows.push(AblationRow {
        label: "mapping: thread-per-realization (paper) -> block-per-realization".into(),
        baseline: pipeline_secs(&paper_engine, shape_paper),
        variant: pipeline_secs(&block_engine, shape_block),
        unit: "s",
    });

    // 2. Layout: interleaved (coalesced) vs contiguous (naive port).
    let naive_engine = default_engine().with_layout(VectorLayout::Contiguous);
    let shape_naive = naive_engine.shape_for(1000, 7000, false, 1024, PAPER_SR);
    rows.push(AblationRow {
        label: "layout: contiguous (naive) -> interleaved (coalesced)".into(),
        baseline: pipeline_secs(&naive_engine, shape_naive),
        variant: pipeline_secs(&paper_engine, shape_paper),
        unit: "s",
    });

    // 3. Recursion: plain (paper) vs moment doubling, CPU model (matvec
    //    count N-1 -> ~N/2).
    let plain =
        KpmWorkload { dim: 1000, stored_entries: 7000, num_moments: 1024, realizations: PAPER_SR };
    let halved = KpmWorkload { num_moments: 513, ..plain };
    rows.push(AblationRow {
        label: "recursion: plain (paper) -> moment doubling (CPU model)".into(),
        baseline: cpu_run_time(&plain, &cpu).as_secs_f64(),
        variant: cpu_run_time(&halved, &cpu).as_secs_f64(),
        unit: "s",
    });

    // 4. Cluster scaling: 1 vs 4 devices (paper future work). The paper's
    //    thread-per-realization mapping starves a single GPU already, so
    //    splitting realizations across devices cannot scale it; the
    //    cluster rows therefore use the block-per-realization mapping,
    //    which keeps every device saturated. Modeled as the owner-computes
    //    realization split of the event pipeline (makespan of the slowest
    //    device).
    let one_dev_shape = block_engine.shape_for(1000, 7000, false, 1024, PAPER_SR);
    rows.push(AblationRow {
        label: "cluster: 1 device -> 4 devices (block mapping, realization partition)".into(),
        baseline: MomentRunPlan::new(one_dev_shape)
            .with_overlap(false)
            .run(&gpu, EFFICIENCY)
            .total
            .as_secs_f64(),
        variant: MomentRunPlan::new(one_dev_shape)
            .with_overlap(false)
            .with_devices(4)
            .run(&gpu, EFFICIENCY)
            .total
            .as_secs_f64(),
        unit: "s",
    });

    // 5. Precision: the paper's double precision vs hypothetical single
    //    (Fermi SP = 2x DP rate, half the traffic). Kernel time only.
    let gpu_spec = gpu.clone();
    let dp_shape = paper_engine.shape_for(128, 128 * 128, true, 2048, PAPER_SR);
    let sp_shape =
        kpm_stream::MomentLaunchShape { precision: kpm_stream::Precision::Single, ..dp_shape };
    rows.push(AblationRow {
        label: "precision: double (paper) -> single (Fig. 7 workload)".into(),
        baseline: gpu_spec
            .kernel_time(&dp_shape.kernel_cost(&gpu_spec), dp_shape.grid_blocks(), 128, 0.2)
            .as_secs_f64(),
        variant: gpu_spec
            .kernel_time(&sp_shape.kernel_cost(&gpu_spec), sp_shape.grid_blocks(), 128, 0.2)
            .as_secs_f64(),
        unit: "s",
    });

    // 6. Streams: would chunked transfer/compute overlap (CUDA streams)
    //    have helped the paper? Fig. 8's biggest configuration has the
    //    largest transfers, so it is the most favourable case. One event
    //    pipeline run prices both arms: `serial_total` is the overlap-off
    //    chain, `total` the chunked-overlap makespan.
    let big = paper_engine.shape_for(4096, 4096 * 4096, true, 128, PAPER_SR);
    let sched = MomentRunPlan::new(big).with_chunks(4).run(&gpu, EFFICIENCY);
    rows.push(AblationRow {
        label: "streams: synchronous (paper) -> 4-stream overlap (Fig. 8 largest)".into(),
        baseline: sched.serial_total.as_secs_f64(),
        variant: sched.total.as_secs_f64(),
        unit: "s",
    });

    // 7. Hardware generation: would the paper's mapping benefit from a
    //    modern device? Thread-per-realization barely moves (latency-bound
    //    with 1792 threads regardless of machine width); the block mapping
    //    inherits the full generational gain.
    let a100_paper = StreamKpmEngine::new(GpuSpec::ampere_a100());
    let a100_shape_paper = a100_paper.shape_for(1000, 7000, false, 1024, PAPER_SR);
    rows.push(AblationRow {
        label: "hardware: C2050 -> A100-class (paper's thread mapping)".into(),
        baseline: pipeline_secs(&paper_engine, shape_paper),
        variant: pipeline_secs(&a100_paper, a100_shape_paper),
        unit: "s",
    });
    let a100_block =
        StreamKpmEngine::new(GpuSpec::ampere_a100()).with_mapping(Mapping::BlockPerRealization);
    let a100_shape_block = a100_block.shape_for(1000, 7000, false, 1024, PAPER_SR);
    rows.push(AblationRow {
        label: "hardware: C2050 -> A100-class (block mapping)".into(),
        baseline: pipeline_secs(&block_engine, shape_block),
        variant: pipeline_secs(&a100_block, a100_shape_block),
        unit: "s",
    });

    rows
}

/// One row of the multi-device scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct DeviceScalingRow {
    /// Devices available to the owner-computes splitter.
    pub devices: usize,
    /// Work mapping of every per-device launch.
    pub mapping: Mapping,
    /// Modeled makespan, seconds (slowest device of the best split).
    pub modeled_s: f64,
    /// Speedup over the 1-device time under the same mapping.
    pub speedup: f64,
}

/// Stable CSV label for a mapping.
pub fn mapping_label(mapping: Mapping) -> &'static str {
    match mapping {
        Mapping::ThreadPerRealization => "thread-per-realization",
        Mapping::BlockPerRealization => "block-per-realization",
    }
}

/// Multi-device scaling of the Fig. 5 workload at N = 1024 (paper Sec. V
/// future work): modeled makespan of the event pipeline's owner-computes
/// realization split for each device count, under both work mappings.
/// Overlap stays on — each device pipelines its own upload against its
/// first compute chunks, exactly as the single-device model does.
pub fn device_scaling(device_counts: &[usize]) -> Vec<DeviceScalingRow> {
    let mut rows = Vec::new();
    for mapping in [Mapping::ThreadPerRealization, Mapping::BlockPerRealization] {
        let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050()).with_mapping(mapping);
        let shape = engine.shape_for(1000, 7000, false, 1024, PAPER_SR);
        let time = |devices: usize| {
            MomentRunPlan::new(shape)
                .with_devices(devices)
                .run(engine.device().spec(), EFFICIENCY)
                .total
                .as_secs_f64()
        };
        let base = time(1);
        for &n in device_counts {
            let t = time(n);
            rows.push(DeviceScalingRow { devices: n, mapping, modeled_s: t, speedup: base / t });
        }
    }
    rows
}

/// Kernel-quality ablation (functional, small scale): fraction of negative
/// DoS mass produced by each kernel on a spectrum with a hard gap — the
/// Gibbs-oscillation artifact the Jackson kernel exists to remove.
pub fn kernel_quality() -> Vec<(String, f64)> {
    use kpm_linalg::gershgorin::SpectralBounds;
    use kpm_linalg::op::DiagonalOp;
    // Two tight bands with a wide gap.
    let eigs: Vec<f64> = (0..128)
        .map(|i| if i < 64 { -0.8 + 0.002 * i as f64 } else { 0.7 + 0.002 * (i - 64) as f64 })
        .collect();
    let op = DiagonalOp::new(eigs);
    let kernels: [(&str, KernelType); 4] = [
        ("jackson", KernelType::Jackson),
        ("lorentz(4)", KernelType::Lorentz { lambda: 4.0 }),
        ("fejer", KernelType::Fejer),
        ("dirichlet", KernelType::Dirichlet),
    ];
    kernels
        .iter()
        .map(|(name, k)| {
            let params =
                KpmParams::new(128).with_random_vectors(8, 2).with_kernel(*k).with_grid_points(512);
            let dos = DosEstimator::new(params)
                .compute_with_bounds(&op, SpectralBounds::new(-1.0, 1.0))
                .expect("kernel quality run");
            // Negative mass fraction: sum of |rho| where rho < 0 over sum |rho|.
            let neg: f64 = dos.rho.iter().filter(|&&r| r < 0.0).map(|r| -r).sum();
            let tot: f64 = dos.rho.iter().map(|r| r.abs()).sum();
            // `.abs()` normalizes the empty-sum case (float Sum identity
            // is -0.0 in Rust).
            (name.to_string(), (neg / tot).abs())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_NS: [usize; 4] = [128, 256, 512, 1024];
    const FIG7_NS: [usize; 5] = [128, 256, 512, 1024, 2048];
    const FIG8_DS: [usize; 4] = [512, 1024, 2048, 4096];

    #[test]
    fn fig5_speedup_in_paper_band_and_flat() {
        // Paper: "The speedup keeps 3.5 times for all the cases."
        let rows = fig5(&PAPER_NS);
        for r in &rows {
            assert!(
                r.speedup() > 2.5 && r.speedup() < 5.5,
                "N = {}: speedup {} out of band",
                r.x,
                r.speedup()
            );
        }
        // Flatness: spread of speedups across N within ~40%.
        let speedups: Vec<f64> = rows.iter().map(|r| r.speedup()).collect();
        let (lo, hi) = (
            speedups.iter().cloned().fold(f64::INFINITY, f64::min),
            speedups.iter().cloned().fold(0.0f64, f64::max),
        );
        assert!(hi / lo < 1.8, "Fig 5 speedup must be roughly flat: {speedups:?}");
    }

    #[test]
    fn fig7_speedup_rises_with_n_to_about_four() {
        // Paper: "the speedup increases to almost 4 times" with N.
        let rows = fig7(&FIG7_NS);
        let first = rows.first().unwrap().speedup();
        let last = rows.last().unwrap().speedup();
        assert!(last > first, "speedup must rise with N: {first} -> {last}");
        assert!(last > 3.0 && last < 5.5, "asymptote ~4x, got {last}");
    }

    #[test]
    fn fig8_speedup_near_four_and_gpu_wins_everywhere() {
        // Paper: "almost four times faster performance than the CPU
        // version" across H_SIZE.
        let rows = fig8(&FIG8_DS);
        for r in &rows {
            assert!(r.speedup() > 2.5 && r.speedup() < 7.0, "D = {}: speedup {}", r.x, r.speedup());
        }
        // Execution times grow steeply with D on both sides.
        assert!(rows[3].cpu_s > 20.0 * rows[0].cpu_s);
        assert!(rows[3].gpu_s > 20.0 * rows[0].gpu_s);
    }

    #[test]
    fn fig6_higher_order_resolves_sharper_structure() {
        let data = fig6(1); // 14 realizations: enough for D = 1000 self-averaging
        assert_eq!(data.orders, (256, 512));
        assert_eq!(data.energies_low.len(), data.rho_low.len());
        // Both curves normalize to ~1.
        let integrate = |e: &[f64], r: &[f64]| -> f64 {
            e.windows(2)
                .zip(r.windows(2))
                .map(|(we, wr)| 0.5 * (wr[0] + wr[1]) * (we[1] - we[0]))
                .sum()
        };
        let i_low = integrate(&data.energies_low, &data.rho_low);
        let i_high = integrate(&data.energies_high, &data.rho_high);
        assert!((i_low - 1.0).abs() < 0.05, "N=256 integral {i_low}");
        assert!((i_high - 1.0).abs() < 0.05, "N=512 integral {i_high}");
        // Higher N -> sharper features: the van Hove structure of the cubic
        // lattice makes the high-order curve rougher (larger total
        // variation).
        let tv = |r: &[f64]| -> f64 { r.windows(2).map(|w| (w[1] - w[0]).abs()).sum() };
        assert!(
            tv(&data.rho_high) > tv(&data.rho_low),
            "N=512 must resolve more structure: tv {} vs {}",
            tv(&data.rho_high),
            tv(&data.rho_low)
        );
    }

    #[test]
    fn ablations_have_expected_directions() {
        let rows = ablations();
        let by_label = |needle: &str| {
            rows.iter()
                .find(|r| r.label.contains(needle))
                .unwrap_or_else(|| panic!("missing ablation {needle}"))
        };
        // Interleaving beats the naive layout.
        assert!(by_label("layout").ratio() > 1.5);
        // Moment doubling roughly halves CPU time.
        let doubling = by_label("recursion").ratio();
        assert!(doubling > 1.6 && doubling < 2.4, "doubling ratio {doubling}");
        // Four devices help.
        assert!(by_label("cluster").ratio() > 1.5);
        // Block mapping is at least as good as the paper's.
        assert!(by_label("mapping").ratio() >= 0.95);
        // Single precision buys ~2x.
        let sp = by_label("precision").ratio();
        assert!((1.7..=2.7).contains(&sp), "SP gain {sp}");
        // Streams buy essentially nothing on this kernel-dominated
        // workload — a negative result worth reporting.
        let st = by_label("streams").ratio();
        assert!((1.0..1.05).contains(&st), "stream gain {st}");
        // A decade of hardware helps the block mapping far more than the
        // paper's latency-bound thread mapping.
        let hw_rows: Vec<&AblationRow> =
            rows.iter().filter(|r| r.label.contains("hardware")).collect();
        assert_eq!(hw_rows.len(), 2);
        let thread_gain = hw_rows[0].ratio();
        let block_gain = hw_rows[1].ratio();
        assert!(
            block_gain > 1.5 * thread_gain,
            "block mapping must inherit more of the generational gain: {thread_gain} vs {block_gain}"
        );
    }

    #[test]
    fn device_scaling_is_monotone_and_block_mapping_scales() {
        let counts = [1usize, 2, 4, 8];
        let rows = device_scaling(&counts);
        assert_eq!(rows.len(), 2 * counts.len());
        for mapping in [Mapping::ThreadPerRealization, Mapping::BlockPerRealization] {
            let curve: Vec<&DeviceScalingRow> =
                rows.iter().filter(|r| r.mapping == mapping).collect();
            assert_eq!(curve.len(), counts.len());
            // More devices never hurt (the splitter idles devices it
            // cannot use), and 1 device is the exact single-device model.
            assert!((curve[0].speedup - 1.0).abs() < 1e-12);
            for w in curve.windows(2) {
                assert!(
                    w[1].modeled_s <= w[0].modeled_s + 1e-12,
                    "{}: {} devices slower than {}",
                    mapping_label(mapping),
                    w[1].devices,
                    w[0].devices
                );
            }
        }
        // The block mapping keeps every device busy, so it must scale
        // much better than the latency-bound paper mapping at 8 devices.
        let at8 =
            |m: Mapping| rows.iter().find(|r| r.mapping == m && r.devices == 8).unwrap().speedup;
        assert!(
            at8(Mapping::BlockPerRealization) > at8(Mapping::ThreadPerRealization),
            "block {} vs thread {}",
            at8(Mapping::BlockPerRealization),
            at8(Mapping::ThreadPerRealization)
        );
        assert!(at8(Mapping::BlockPerRealization) > 2.0);
    }

    #[test]
    fn kernel_quality_orders_as_theory_predicts() {
        let q = kernel_quality();
        let get = |name: &str| q.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(get("jackson") < 1e-6, "Jackson is positive: {}", get("jackson"));
        assert!(get("dirichlet") > 0.01, "Dirichlet must show Gibbs ringing");
        assert!(get("fejer") < get("dirichlet"));
    }
}
