//! Pricing the paper's CPU baseline.
//!
//! The "CPU version" of the paper is the plain sequential KPM (the `kpm`
//! crate's reference implementation); its run time at full parameter scale
//! is modeled on the Core i7 930 with the cache-aware roofline in
//! `kpm-streamsim::host`, fed by the operation counts in `kpm::workload`.

use kpm::workload::KpmWorkload;
use kpm_streamsim::{CpuSpec, HostClock, MemTraffic, SimTime};

/// Models the CPU time of one full KPM run.
///
/// Phases per realization: RNG fill, `N - 1` matvecs, `N` fused
/// combine+dot passes — the structure of
/// [`kpm::moments::stochastic_moments`] with the plain recursion.
pub fn cpu_run_time(w: &KpmWorkload, spec: &CpuSpec) -> SimTime {
    let mut clock = HostClock::new();
    let to_traffic = |p: kpm::workload::PhaseProfile| MemTraffic {
        flops: p.flops,
        bytes: p.bytes,
        working_set_bytes: p.working_set_bytes,
    };
    let rng = to_traffic(w.rng_profile());
    let matvec = to_traffic(w.matvec_profile());
    let combine = to_traffic(w.combine_dot_profile());

    // One realization, then scale — phases are identical across
    // realizations, so modeled time is exactly linear.
    let mut one = SimTime::ZERO;
    one += clock.charge(spec, &rng);
    let t_matvec = clock.charge(spec, &matvec);
    let t_combine = clock.charge(spec, &combine);
    one += SimTime::from_secs(t_matvec.as_secs_f64() * (w.num_moments as f64 - 1.0));
    one += SimTime::from_secs(t_combine.as_secs_f64() * w.num_moments as f64);
    SimTime::from_secs(one.as_secs_f64() * w.realizations as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5(n: usize) -> KpmWorkload {
        KpmWorkload { dim: 1000, stored_entries: 7000, num_moments: n, realizations: 1792 }
    }

    fn fig8(d: usize) -> KpmWorkload {
        KpmWorkload { dim: d, stored_entries: d * d, num_moments: 128, realizations: 1792 }
    }

    #[test]
    fn time_scales_linearly_with_n_and_realizations() {
        let spec = CpuSpec::core_i7_930();
        let t1 = cpu_run_time(&fig5(128), &spec).as_secs_f64();
        let t2 = cpu_run_time(&fig5(256), &spec).as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 0.05, "N doubling: {}", t2 / t1);
        let mut half = fig5(128);
        half.realizations = 896;
        let th = cpu_run_time(&half, &spec).as_secs_f64();
        assert!((t1 / th - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dense_time_grows_superlinearly_past_l3() {
        // The Fig. 8 mechanism: D = 512 -> 2 MB (L3-resident),
        // D = 2048 -> 32 MB (DRAM). Per-flop cost must jump.
        let spec = CpuSpec::core_i7_930();
        let t512 = cpu_run_time(&fig8(512), &spec).as_secs_f64();
        let t2048 = cpu_run_time(&fig8(2048), &spec).as_secs_f64();
        // Pure flop scaling would be 16x; the cache cliff makes it more.
        assert!(t2048 / t512 > 16.0, "ratio {}", t2048 / t512);
    }

    #[test]
    fn sparse_fig5_run_is_compute_bound_and_plausible() {
        // N = 1024: the estimate should land in O(seconds), not
        // milliseconds or hours (sanity pin for EXPERIMENTS.md).
        let spec = CpuSpec::core_i7_930();
        let t = cpu_run_time(&fig5(1024), &spec).as_secs_f64();
        assert!(t > 1.0 && t < 100.0, "t = {t}");
    }
}
