//! End-to-end smoke test of the `repro` binary: every model-based figure
//! command runs, prints its table, and writes its CSV. (Fig. 6 is skipped
//! here — it executes the full functional simulation and is covered by the
//! library test `figures::tests::fig6_higher_order_resolves_sharper_structure`.)

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn model_figures_run_and_write_csv() {
    let dir = std::env::temp_dir().join("kpm_repro_smoke");
    let _ = std::fs::remove_dir_all(&dir);

    for (cmd, csv, header) in [
        ("fig5", "fig5.csv", "N,cpu_s,gpu_s,speedup"),
        ("fig7", "fig7.csv", "N,cpu_s,gpu_s,speedup"),
        ("fig8", "fig8.csv", "H_SIZE,cpu_s,gpu_s,speedup"),
    ] {
        let out =
            repro().args([cmd, "--out", dir.to_str().unwrap()]).output().expect("spawn repro");
        assert!(out.status.success(), "{cmd} failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("speedup"), "{cmd} table missing:\n{stdout}");

        let content = std::fs::read_to_string(dir.join(csv)).expect(csv);
        assert!(content.starts_with(header), "{csv} header:\n{content}");
        assert!(content.lines().count() >= 4, "{csv} too short");
        // Every speedup in a sane band.
        for line in content.lines().skip(1) {
            let speedup: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!((1.5..=8.0).contains(&speedup), "{csv}: speedup {speedup}");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ablations_run_and_report_all_comparisons() {
    let dir = std::env::temp_dir().join("kpm_repro_smoke_abl");
    let _ = std::fs::remove_dir_all(&dir);
    let out =
        repro().args(["ablations", "--out", dir.to_str().unwrap()]).output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["mapping", "layout", "recursion", "cluster", "precision", "streams", "jackson"] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
    assert!(dir.join("ablations.csv").exists());
    assert!(dir.join("kernel_quality.csv").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = repro().args(["fig99"]).output().expect("spawn repro");
    assert!(!out.status.success());
    let out = repro().output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
