//! Spectrum-adaptive bounds ablation: moments at fixed resolution.
//!
//! For Anderson-disordered cubic lattices — the paper's 10x10x10 workload
//! and a 48x48x48 out-of-cache variant — this compares a full DoS run at a
//! *matched energy resolution* under the two bounds providers:
//!
//! - `gershgorin`: the paper's discs. On disorder `W` they overshoot the
//!   spectral edge by O(W/2), so hitting the target resolution needs
//!   proportionally more Chebyshev moments.
//! - `lanczos:64`: the contained Lanczos window. Tighter half-width, fewer
//!   moments, same physics.
//!
//! Both sides run the same estimator pipeline; only the bounds method (and
//! the `moments_for_resolution` count it implies) differs. Each lattice is
//! also run through the sharded engine (2 local workers) to show the win
//! survives the distributed path. Results land in
//! `results/ablation_bounds.csv` with a `speedup_vs_gershgorin` column —
//! the acceptance evidence for the >= 1.3x wall-time win.

use criterion::{BenchmarkId, Criterion};
use kpm::prelude::*;
use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_linalg::{MatrixFormat, SparseMatrix};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 42;
const DISORDER_W: f64 = 12.0;
const DISORDER_SEED: u64 = 7;
const LANCZOS_STEPS: usize = 64;

fn disordered_cubic(l: usize) -> SparseMatrix {
    TightBinding::new(
        HypercubicLattice::cubic(l, l, l, Boundary::Periodic),
        1.0,
        OnSite::Disorder { width: DISORDER_W, seed: DISORDER_SEED },
    )
    .build_format(MatrixFormat::Csr)
}

/// Min-of-`reps` wall time in seconds for each of two alternatives,
/// interleaved A/B so host drift hits both sides equally.
fn time_pair(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        a();
        best.0 = best.0.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        b();
        best.1 = best.1.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Mode {
    label: &'static str,
    method: BoundsMethod,
    n_moments: usize,
    a_minus: f64,
    probe_ms: f64,
}

/// Resolve bounds, time the probe, and pick N for the target resolution.
fn mode_for(h: &SparseMatrix, label: &'static str, method: BoundsMethod, eps: f64) -> Mode {
    let t0 = Instant::now();
    let bounds = h.spectral_bounds(method).expect("bounds");
    let probe_ms = t0.elapsed().as_secs_f64() * 1e3;
    let a_minus = bounds.padded(0.01).a_minus();
    let n_moments =
        moments_for_resolution(KernelType::Jackson, a_minus, eps).expect("moment count");
    Mode { label, method, n_moments, a_minus, probe_ms }
}

fn params_for(mode: &Mode, r: usize, s: usize) -> KpmParams {
    KpmParams::new(mode.n_moments)
        .with_random_vectors(r, s)
        .with_seed(SEED)
        .with_bounds(mode.method)
}

fn spec_for(l: usize, mode: &Mode, r: usize, s: usize) -> kpm_serve::JobSpec {
    let line = format!(
        "lattice=cubic:{l},{l},{l} disorder={DISORDER_W}@{DISORDER_SEED} moments={} random={r} \
         sets={s} seed={SEED} bounds={}",
        mode.n_moments, mode.method
    );
    kpm_serve::JobSpec::parse(&line).expect("job spec")
}

fn write_results_csv() {
    // (label, L, eps, R, S, reps): eps is the matched target resolution.
    let cases = [
        ("cubic-10x10x10", 10usize, 0.05f64, 14usize, 1usize, 5usize),
        ("cubic-48x48x48", 48, 0.4, 2, 1, 3),
    ];
    let mut rows = vec![
        "lattice,dim,engine,mode,eps,n_moments,a_minus,probe_ms,seconds,speedup_vs_gershgorin"
            .to_string(),
    ];

    for (label, l, eps, r, s, reps) in cases {
        let h = disordered_cubic(l);
        let d = h.dim();
        let gersh = mode_for(&h, "gershgorin", BoundsMethod::Gershgorin, eps);
        let lanczos =
            mode_for(&h, "lanczos:64", BoundsMethod::Lanczos { steps: LANCZOS_STEPS }, eps);

        // Deployments probe an operator once (the cost is the probe_ms
        // column) and reuse the memoized bounds for every job after; warm
        // the per-operator cache so the timed runs measure that steady
        // state rather than re-probing per repetition.
        let job_g = kpm_shard::ShardJob::Dos(spec_for(l, &gersh, r, s));
        let job_l = kpm_shard::ShardJob::Dos(spec_for(l, &lanczos, r, s));
        let op_key = job_g.op_key();
        {
            let _scope = OpKeyScope::enter(op_key);
            kpm::bounds::resolve(&h, gersh.method).expect("warm gershgorin");
            kpm::bounds::resolve(&h, lanczos.method).expect("warm lanczos");
        }

        // Single-process: the estimator pipeline end to end.
        let (t_g, t_l) = time_pair(
            reps,
            || {
                let _scope = OpKeyScope::enter(op_key);
                black_box(DosEstimator::new(params_for(&gersh, r, s)).compute(&h).expect("dos"));
            },
            || {
                let _scope = OpKeyScope::enter(op_key);
                black_box(DosEstimator::new(params_for(&lanczos, r, s)).compute(&h).expect("dos"));
            },
        );

        // Sharded: same specs through 2 local workers (each shard enters
        // its own op-key scope, so the memoized resolver absorbs the
        // worker-side probes too).
        let engine = kpm_shard::ShardedEngine::local(2);
        let (f_g, f_l) = time_pair(
            reps,
            || {
                black_box(engine.run_job(&job_g).expect("sharded dos"));
            },
            || {
                black_box(engine.run_job(&job_l).expect("sharded dos"));
            },
        );

        for (engine_label, tg, tl) in [("single", t_g, t_l), ("shard-2", f_g, f_l)] {
            for (mode, t) in [(&gersh, tg), (&lanczos, tl)] {
                rows.push(format!(
                    "{label},{d},{engine_label},{},{eps},{},{:.6},{:.3},{t:.6},{:.3}",
                    mode.label,
                    mode.n_moments,
                    mode.a_minus,
                    mode.probe_ms,
                    tg / t,
                ));
            }
        }
    }

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("ablation_bounds.csv"), rows.join("\n") + "\n")
        .expect("write ablation_bounds.csv");
}

fn bench_bounds_modes(c: &mut Criterion) {
    let h = disordered_cubic(10);
    let eps = 0.05;
    let gersh = mode_for(&h, "gershgorin", BoundsMethod::Gershgorin, eps);
    let lanczos = mode_for(&h, "lanczos:64", BoundsMethod::Lanczos { steps: LANCZOS_STEPS }, eps);
    let _scope = OpKeyScope::enter(0x6272_6e63_685f_6264);
    kpm::bounds::resolve(&h, gersh.method).expect("warm gershgorin");
    kpm::bounds::resolve(&h, lanczos.method).expect("warm lanczos");
    let mut group = c.benchmark_group("ablation_bounds");
    group.sample_size(10);
    for mode in [&gersh, &lanczos] {
        group.bench_with_input(BenchmarkId::new(mode.label, mode.n_moments), mode, |b, m| {
            b.iter(|| black_box(DosEstimator::new(params_for(m, 14, 1)).compute(&h).unwrap()));
        });
    }
    group.finish();
}

fn main() {
    write_results_csv();
    let mut c = Criterion::default();
    bench_bounds_modes(&mut c);
}
