//! Fig. 5 companion bench: wall-time of the *functional* implementations on
//! the paper's 10×10×10 lattice, sweeping the truncation order `N`.
//!
//! The repro binary prices the paper's full scale with the performance
//! models; this bench measures the real Rust code (CPU reference vs the
//! simulated device's functional layer) at a reduced realization count so
//! Criterion can iterate. The shape to look for: both paths scale linearly
//! in `N` (the KPM's `O(S R N D)` claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpm::moments::{stochastic_moments, KpmParams};
use kpm::rescale::{rescale, Boundable};
use kpm_lattice::paper_cubic_hamiltonian;
use kpm_stream::StreamKpmEngine;
use kpm_streamsim::GpuSpec;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let h = paper_cubic_hamiltonian();
    let mut group = c.benchmark_group("fig5_lattice_sweep");
    group.sample_size(10);

    for &n in &[32usize, 64, 128] {
        let params = KpmParams::new(n).with_random_vectors(4, 2).with_seed(1);

        group.bench_with_input(BenchmarkId::new("cpu_reference", n), &n, |b, _| {
            let bounds = h.spectral_bounds(params.bounds).unwrap();
            let rescaled = rescale(&h, bounds, params.padding).unwrap();
            b.iter(|| black_box(stochastic_moments(&rescaled, &params)));
        });

        group.bench_with_input(BenchmarkId::new("device_functional", n), &n, |b, _| {
            b.iter(|| {
                let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
                black_box(engine.compute_moments_csr(&h, &params).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
