//! Block-size ablation (the paper's Sec. V future work): measures the
//! tuner's full sweep cost and functional device runs at different
//! `BLOCK_SIZE`s under the block-per-realization mapping. Functional wall
//! time barely depends on the block size (it's simulated), but the modeled
//! time per configuration is printed by the repro binary; here we guard
//! that tuning stays cheap and that changing the block size does not
//! change results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpm::moments::KpmParams;
use kpm_lattice::paper_cubic_hamiltonian;
use kpm_stream::cost::{MomentLaunchShape, Precision, SparseFormat};
use kpm_stream::tune::tune_block_size;
use kpm_stream::{Mapping, StreamKpmEngine, VectorLayout};
use kpm_streamsim::GpuSpec;
use std::hint::black_box;

fn bench_tuner(c: &mut Criterion) {
    let spec = GpuSpec::tesla_c2050();
    let shape = MomentLaunchShape {
        dim: 1000,
        stored_entries: 7000,
        dense: false,
        format: SparseFormat::Csr,
        num_moments: 1024,
        realizations: 1792,
        mapping: Mapping::ThreadPerRealization,
        layout: VectorLayout::Interleaved,
        block_size: 128,
        precision: Precision::Double,
    };
    let mut group = c.benchmark_group("ablation_block_size");
    group.sample_size(30);
    group.bench_function("tune_sweep", |b| {
        b.iter(|| black_box(tune_block_size(&spec, &shape, 0.2, None)));
    });
    group.finish();
}

fn bench_functional_block_sizes(c: &mut Criterion) {
    let h = paper_cubic_hamiltonian();
    let params = KpmParams::new(32).with_random_vectors(2, 2).with_seed(4);
    let mut group = c.benchmark_group("ablation_block_size_functional");
    group.sample_size(10);
    for &bs in &[32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::new("block_mapping", bs), &bs, |b, &bs| {
            b.iter(|| {
                let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050())
                    .with_mapping(Mapping::BlockPerRealization)
                    .with_block_size(bs);
                black_box(engine.compute_moments_csr(&h, &params).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tuner, bench_functional_block_sizes);
criterion_main!(benches);
