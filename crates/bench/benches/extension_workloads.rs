//! Benchmarks for the beyond-the-paper extensions: the Chebyshev
//! propagator and the 2D-KPM conductivity engine. Their scaling exponents
//! are the point — evolution is `O(t D)` per unit time (Bessel tail), and
//! double moments are `O(N^2 D)`, quadratically heavier than the DoS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpm::kubo::{double_moments, velocity_operator};
use kpm::moments::KpmParams;
use kpm::propagate::{ComplexState, Propagator};
use kpm::rescale::Boundable;
use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use std::hint::black_box;

fn chain(l: usize) -> kpm_linalg::CsrMatrix {
    TightBinding::new(HypercubicLattice::chain(l, Boundary::Periodic), 1.0, OnSite::Uniform(0.0))
        .build_csr()
}

fn bench_propagator(c: &mut Criterion) {
    let h = chain(1024);
    let bounds = h.spectral_bounds(kpm::BoundsMethod::Gershgorin).unwrap();
    let prop = Propagator::new(&h, bounds, 1e-10).unwrap();
    let mut re = vec![0.0; 1024];
    re[512] = 1.0;
    let psi = ComplexState::from_real(re);

    let mut group = c.benchmark_group("extension_propagator");
    group.sample_size(10);
    for &t in &[1.0f64, 4.0, 16.0] {
        group.bench_with_input(BenchmarkId::new("evolve_chain_1024", t as usize), &t, |b, &t| {
            b.iter(|| black_box(prop.evolve(&psi, t)));
        });
    }
    group.finish();
}

fn bench_double_moments(c: &mut Criterion) {
    let l = 256;
    let h = chain(l);
    let bounds = h.spectral_bounds(kpm::BoundsMethod::Gershgorin).unwrap().padded(0.01);
    let hs = kpm_linalg::op::RescaledOp::new(&h, bounds.a_plus(), bounds.a_minus());
    let positions: Vec<f64> = (0..l).map(|i| i as f64).collect();
    let v = velocity_operator(&h, &positions, Some(l as f64));

    let mut group = c.benchmark_group("extension_double_moments");
    group.sample_size(10);
    for &n in &[8usize, 16, 32] {
        let params = KpmParams::new(n).with_random_vectors(2, 1).with_seed(1);
        group.bench_with_input(BenchmarkId::new("kubo_chain_256", n), &n, |b, _| {
            b.iter(|| black_box(double_moments(&hs, &v, &params).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagator, bench_double_moments);
criterion_main!(benches);
