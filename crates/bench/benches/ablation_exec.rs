//! Execution-plan ablation: realization-parallel vs row-tiled vs hybrid.
//!
//! Sweeps thread budgets {1, 2, 4, 8} across the three explicit policies on
//! the paper's Fig. 5 lattice (10x10x10, D = 1000 — *below* the old
//! realization-parallel cutoff, so `realizations` runs fully serial there)
//! and on a 48x48x48 lattice (D = 110,592, out of cache). A second section
//! pits the fused single-sweep Chebyshev step against the split
//! matvec-then-combine schedule at one thread, isolating the memory-traffic
//! saving (32 B vs 48 B of vector traffic per row per column) from any
//! parallel speedup.
//!
//! Results land in `results/ablation_exec.csv`. The machine may have fewer
//! cores than the requested budget, so each row records the requested
//! budget, the worker threads the engine actually spawns, and the host's
//! core count — speedups should be judged against `cores`, while the
//! fused-vs-split rows are meaningful even on one core.

use criterion::{BenchmarkId, Criterion};
use kpm::moments::block_vector_moments;
use kpm::prelude::*;
use kpm::random::fill_random_vector;
use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_linalg::op::RescaledOp;
use kpm_linalg::tiled::fused_block_moments_plain;
use kpm_linalg::{MatrixFormat, SparseMatrix, DEFAULT_TILE_ROWS};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 42;
const R: usize = 14; // the paper's random vectors per set
const THREADS: [usize; 4] = [1, 2, 4, 8];
const POLICIES: [ExecPolicy; 3] = [ExecPolicy::Realizations, ExecPolicy::Rows, ExecPolicy::Hybrid];

fn cubic(l: usize) -> RescaledOp<SparseMatrix> {
    let tb = TightBinding::new(
        HypercubicLattice::cubic(l, l, l, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .store_zero_diagonal(true);
    let m = tb.build_format(MatrixFormat::Ell);
    let bounds = m.spectral_bounds(BoundsMethod::Gershgorin).expect("bounds");
    rescale(m, bounds, 0.01).expect("rescale")
}

fn start_block(dim: usize, r: usize) -> Vec<f64> {
    let mut block = vec![0.0; dim * r];
    for (j, col) in block.chunks_exact_mut(dim).enumerate() {
        fill_random_vector(Distribution::Rademacher, SEED, 0, j, col);
    }
    block
}

/// Min-of-`reps` wall time in seconds.
fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn time_it(f: impl FnMut()) -> f64 {
    time_reps(3, f)
}

fn write_results_csv() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cases = [("cubic:10,10,10", 10usize, 256usize), ("cubic:48,48,48", 48, 32)];
    let mut rows =
        vec!["variant,lattice,dim,policy,plan,threads,workers,cores,num_moments,r,seconds"
            .to_string()];

    for (label, l, n) in cases {
        let op = cubic(l);
        let d = op.dim();
        let params = KpmParams::new(n).with_random_vectors(R, 1).with_seed(SEED);
        for policy in POLICIES {
            set_exec_policy(policy);
            for threads in THREADS {
                set_thread_budget(threads);
                let plan = kpm::exec::plan(d, 1);
                let workers = match plan {
                    ExecPlan::Rows { threads, tile_rows } => {
                        threads.clamp(1, d.div_ceil(tile_rows))
                    }
                    ExecPlan::Hybrid { inner, tile_rows, .. } => {
                        inner.clamp(1, d.div_ceil(tile_rows))
                    }
                    _ => 1,
                };
                let secs = time_it(|| {
                    black_box(stochastic_moments(&op, &params));
                });
                rows.push(format!(
                    "plan_sweep,{label},{d},{},{},{threads},{workers},{cores},{n},{R},{secs:.6}",
                    policy.as_str(),
                    plan.name()
                ));
            }
        }
        set_exec_policy(ExecPolicy::Auto);
        set_thread_budget(0);
    }

    // Fused single-sweep vs split schedule, one worker. At D = 1000 the
    // vectors are cache-resident, so this isolates kernel quality; at 48^3
    // they are not, and the fused step's one-fewer pass over the vectors
    // shows up directly. Interleaved min-of-7 / min-of-3 to ride out
    // noisy-neighbor drift on shared hosts.
    for (label, l, n, reps) in
        [("cubic:10,10,10", 10usize, 256usize, 7usize), ("cubic:48,48,48", 48, 64, 3)]
    {
        let op = cubic(l);
        let d = op.dim();
        let block = start_block(d, R);
        let mut split = f64::INFINITY;
        let mut fused = f64::INFINITY;
        for _ in 0..reps {
            split = split.min(time_reps(1, || {
                black_box(block_vector_moments(&op, &block, R, n, Recursion::Plain));
            }));
            fused = fused.min(time_reps(1, || {
                black_box(fused_block_moments_plain(&op, &block, R, n, 1, DEFAULT_TILE_ROWS));
            }));
        }
        rows.push(format!(
            "fused_vs_split,{label},{d},split,serial,1,1,{cores},{n},{R},{split:.6}"
        ));
        rows.push(format!("fused_vs_split,{label},{d},fused,rows,1,1,{cores},{n},{R},{fused:.6}"));
    }

    // `cargo bench` runs with the package directory as cwd; anchor the
    // output at the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("ablation_exec.csv"), rows.join("\n") + "\n")
        .expect("write ablation_exec.csv");
}

fn bench_exec_plans(c: &mut Criterion) {
    let op = cubic(10);
    let params = KpmParams::new(256).with_random_vectors(R, 1).with_seed(SEED);
    let mut group = c.benchmark_group("ablation_exec");
    group.sample_size(10);
    for policy in POLICIES {
        set_exec_policy(policy);
        for threads in [1usize, 4] {
            set_thread_budget(threads);
            group.bench_with_input(BenchmarkId::new(policy.as_str(), threads), &threads, |b, _| {
                b.iter(|| black_box(stochastic_moments(&op, &params)));
            });
        }
    }
    set_exec_policy(ExecPolicy::Auto);
    set_thread_budget(0);

    let d = op.dim();
    let block = start_block(d, R);
    group.bench_function("split_1thread", |b| {
        b.iter(|| black_box(block_vector_moments(&op, &block, R, 256, Recursion::Plain)));
    });
    group.bench_function("fused_1thread", |b| {
        b.iter(|| black_box(fused_block_moments_plain(&op, &block, R, 256, 1, DEFAULT_TILE_ROWS)));
    });
    group.finish();
}

fn main() {
    write_results_csv();
    let mut c = Criterion::default();
    bench_exec_plans(&mut c);
}
