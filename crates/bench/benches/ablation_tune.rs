//! Calibrated-vs-heuristic planning ablation.
//!
//! For the two `ablation_exec` workloads — the paper's Fig. 5 lattice
//! (10x10x10, D = 1000, N = 256) and a 48x48x48 lattice (D = 110,592, out
//! of cache, N = 32) — this times `ExecPolicy::Auto` twice: once with
//! calibration disabled (the static heuristic, the pre-tuner behavior) and
//! once after a `kpm::tune` probe sweep has stored a measured profile. The
//! probe cost is reported separately from the steady-state run time, since
//! the profile store amortizes it across every later run of the shape.
//!
//! Results land in `results/ablation_tune.csv` with a
//! `speedup_vs_heuristic` column — the acceptance evidence that the
//! calibrated planner never loses more than noise to the heuristic and wins
//! where the measured shape differs from the prior.

use criterion::{BenchmarkId, Criterion};
use kpm::prelude::*;
use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_linalg::op::RescaledOp;
use kpm_linalg::{MatrixFormat, SparseMatrix};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 42;
const R: usize = 14; // the paper's random vectors per set

fn cubic(l: usize) -> RescaledOp<SparseMatrix> {
    let tb = TightBinding::new(
        HypercubicLattice::cubic(l, l, l, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .store_zero_diagonal(true);
    let m = tb.build_format(MatrixFormat::Ell);
    let bounds = m.spectral_bounds(BoundsMethod::Gershgorin).expect("bounds");
    rescale(m, bounds, 0.01).expect("rescale")
}

/// Min-of-`reps` wall time in seconds for each of two alternatives, with
/// the reps interleaved A/B so slow host drift hits both sides equally
/// instead of whichever block ran second.
fn time_pair(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        a();
        best.0 = best.0.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        b();
        best.1 = best.1.min(t.elapsed().as_secs_f64());
    }
    best
}

fn write_results_csv() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Labels stay comma-free so the CSV parses without quoting.
    let cases = [("cubic-10x10x10", 10usize, 256usize, 15usize), ("cubic-48x48x48", 48, 32, 5)];
    let mut rows =
        vec!["lattice,dim,num_moments,r,threads,cores,mode,plan,tile_rows,probe_ms,seconds,\
         speedup_vs_heuristic"
            .to_string()];

    for (label, l, n, reps) in cases {
        let op = cubic(l);
        let d = op.dim();
        let params = KpmParams::new(n).with_random_vectors(R, 1).with_seed(SEED);
        let chunks = realization_chunk_count(&params, 0..params.total_realizations());
        let threads = kpm::exec::effective_threads();

        // The static heuristic is exactly what `--no-tune` runs; the probe
        // happens once up front (cost reported separately, amortized by the
        // profile store across every later run of the shape).
        set_tuning_enabled(false);
        let heuristic_plan = kpm::exec::plan_for(d, op.model_entries(), chunks);
        set_tuning_enabled(true);
        kpm::tune::store().clear_memory();
        let probe_t0 = Instant::now();
        let profile = ensure_profile(&op, chunks);
        let probe_ms = probe_t0.elapsed().as_secs_f64() * 1e3;
        let plan = profile.plan(threads);

        let (heuristic, calibrated) = time_pair(
            reps,
            || {
                set_tuning_enabled(false);
                black_box(stochastic_moments(&op, &params));
            },
            || {
                set_tuning_enabled(true);
                black_box(stochastic_moments(&op, &params));
            },
        );
        kpm::tune::store().clear_memory();
        set_tuning_enabled(true);

        rows.push(format!(
            "{label},{d},{n},{R},{threads},{cores},heuristic,{},{},0.000,{heuristic:.6},1.000",
            heuristic_plan.name(),
            plan_tile_rows(&heuristic_plan),
        ));
        rows.push(format!(
            "{label},{d},{n},{R},{threads},{cores},calibrated,{},{},{probe_ms:.3},\
             {calibrated:.6},{:.3}",
            plan.name(),
            plan_tile_rows(&plan),
            heuristic / calibrated,
        ));
    }

    // `cargo bench` runs with the package directory as cwd; anchor the
    // output at the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("ablation_tune.csv"), rows.join("\n") + "\n")
        .expect("write ablation_tune.csv");
}

fn plan_tile_rows(plan: &ExecPlan) -> usize {
    match plan {
        ExecPlan::Rows { tile_rows, .. } | ExecPlan::Hybrid { tile_rows, .. } => *tile_rows,
        _ => 0,
    }
}

fn bench_tuned_vs_heuristic(c: &mut Criterion) {
    let op = cubic(10);
    let d = op.dim();
    let params = KpmParams::new(256).with_random_vectors(R, 1).with_seed(SEED);
    let chunks = realization_chunk_count(&params, 0..params.total_realizations());
    let mut group = c.benchmark_group("ablation_tune");
    group.sample_size(10);

    set_tuning_enabled(false);
    group.bench_with_input(BenchmarkId::new("heuristic", d), &d, |b, _| {
        b.iter(|| black_box(stochastic_moments(&op, &params)));
    });

    set_tuning_enabled(true);
    kpm::tune::store().clear_memory();
    ensure_profile(&op, chunks);
    group.bench_with_input(BenchmarkId::new("calibrated", d), &d, |b, _| {
        b.iter(|| black_box(stochastic_moments(&op, &params)));
    });
    kpm::tune::store().clear_memory();
    group.finish();
}

fn main() {
    write_results_csv();
    let mut c = Criterion::default();
    bench_tuned_vs_heuristic(&mut c);
}
