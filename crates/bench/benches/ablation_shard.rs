//! Worker-count scaling of the distributed shard subsystem.
//!
//! One DoS job — a periodic cubic lattice kept *below* the `kpm-linalg`
//! parallel threshold (D = 2744 < 4096), so the per-realization recursion
//! stays single-threaded and any worker scaling is attributable to the
//! shard fan-out alone — is run unsharded and then through
//! [`kpm_shard::ShardedEngine`] with 1, 2, and 4 local loopback workers.
//! Every sharded run merges to moments bitwise identical to the unsharded
//! baseline (asserted here), so whatever the timings say, the *answer*
//! never moves.
//!
//! The 1-worker row measures the full wire-protocol + scheduling tax over
//! the in-process baseline. On a multicore host the 2- and 4-worker rows
//! show the realization-parallel speedup the coordinator buys; on a
//! single-core host (this repo's CI container) they instead record the
//! pure coordination overhead of oversubscribing one CPU — both are the
//! numbers a deployment decision needs. A min-of-3 sweep is recorded to
//! `results/ablation_shard.csv`.

use criterion::{BenchmarkId, Criterion};
use kpm_serve::worker::compute_raw_moments;
use kpm_serve::JobSpec;
use kpm_shard::{MergedMoments, ShardJob, ShardedEngine};
use std::hint::black_box;
use std::time::Instant;

const WORKERS: [usize; 3] = [1, 2, 4];
/// 14^3 = 2744 sites; S x R = 2 x 14 = 28 realizations to spread.
const LINE: &str = "lattice=cubic:14,14,14 moments=128 random=14 sets=2 seed=42";

fn job() -> ShardJob {
    ShardJob::Dos(JobSpec::parse(LINE).expect("valid job line"))
}

fn run_sharded(engine: &ShardedEngine) -> Vec<f64> {
    match engine.run_job(&job()).expect("sharded run") {
        MergedMoments::Stats(stats) => stats.mean,
        MergedMoments::Double(_) => unreachable!("dos merges to stats"),
    }
}

/// Min-of-3 wall time in seconds.
fn time_it(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Min-of-3 sweep recorded to `results/ablation_shard.csv`.
fn write_results_csv() {
    let spec = JobSpec::parse(LINE).unwrap();
    let baseline_moments = compute_raw_moments(&spec, 0).expect("baseline").0.mean;
    let baseline = time_it(|| {
        black_box(compute_raw_moments(&spec, 0).expect("baseline"));
    });

    let mut rows = vec!["variant,workers,seconds,speedup_vs_unsharded".to_string()];
    rows.push(format!("unsharded,0,{baseline:.6},1.00"));
    for &n in &WORKERS {
        let engine = ShardedEngine::local(n);
        // The distributed guarantee, checked where the numbers are made:
        // sharded moments are bitwise identical to the unsharded run.
        assert_eq!(run_sharded(&engine), baseline_moments, "{n} workers must match bitwise");
        let secs = time_it(|| {
            black_box(run_sharded(&engine));
        });
        rows.push(format!("sharded,{n},{secs:.6},{:.2}", baseline / secs));
    }

    // `cargo bench` runs with the package directory as cwd; anchor the
    // output at the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("ablation_shard.csv"), rows.join("\n") + "\n")
        .expect("write ablation_shard.csv");
}

fn bench_shard(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shard");
    group.sample_size(5);
    group.bench_function("unsharded", |b| {
        let spec = JobSpec::parse(LINE).unwrap();
        b.iter(|| black_box(compute_raw_moments(&spec, 0).expect("baseline")));
    });
    for &n in &WORKERS {
        let engine = ShardedEngine::local(n);
        group.bench_with_input(BenchmarkId::new("local_workers", n), &n, |b, _| {
            b.iter(|| black_box(run_sharded(&engine)));
        });
    }
    group.finish();
}

fn main() {
    write_results_csv();
    let mut c = Criterion::default();
    bench_shard(&mut c);
}
