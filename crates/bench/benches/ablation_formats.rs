//! Format × block-width ablation on a paper-scale periodic cubic lattice.
//!
//! The baseline is the seed pipeline's inner loop: one vector at a time
//! through CSR (`single_vector_moments`). Against it we run the blocked
//! recursion (`block_vector_moments`) over CSR, padded ELL, and the
//! matrix-free stencil at block widths R ∈ {1, 8, 14} (14 is the paper's
//! `R` per set). Every variant computes bitwise-identical moments; the
//! sweep isolates pure storage/traversal cost.
//!
//! The lattice is 48x48x48 (D = 110,592; the bitwise cross-format tests use
//! the paper's 10x10x10). At this size the ~12 MB CSR arrays no longer fit
//! in L2, so re-streaming the matrix once per vector — what the one-vector
//! baseline does — costs real bandwidth, and amortizing the sweep over `R`
//! right-hand sides (or generating the pattern on the fly) shows up as the
//! speedup the paper's Fig. 3 blocking targets.
//!
//! Besides the criterion groups, a manual min-of-3 timing sweep is written
//! to `results/ablation_formats.csv` so the repository records the numbers
//! the acceptance criterion refers to.

use criterion::{BenchmarkId, Criterion};
use kpm::moments::{block_vector_moments, single_vector_moments, Recursion};
use kpm::prelude::*;
use kpm::random::fill_random_vector;
use kpm_lattice::OnSite;
use kpm_lattice::{Boundary, HypercubicLattice, TightBinding};
use kpm_linalg::op::RescaledOp;
use kpm_linalg::{MatrixFormat, SparseMatrix};
use std::hint::black_box;
use std::time::Instant;

const NUM_MOMENTS: usize = 64;
const WIDTHS: [usize; 3] = [1, 8, 14];
const SEED: u64 = 42;
const L: usize = 48;

fn paper_model() -> TightBinding {
    TightBinding::new(
        HypercubicLattice::cubic(L, L, L, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .store_zero_diagonal(true)
}

fn rescaled(m: SparseMatrix) -> RescaledOp<SparseMatrix> {
    let bounds = m.spectral_bounds(BoundsMethod::Gershgorin).expect("bounds");
    rescale(m, bounds, 0.01).expect("rescale")
}

fn start_block(dim: usize, r: usize) -> Vec<f64> {
    let mut block = vec![0.0; dim * r];
    for (j, col) in block.chunks_exact_mut(dim).enumerate() {
        fill_random_vector(Distribution::Rademacher, SEED, 0, j, col);
    }
    block
}

/// The seed path: R independent one-vector recursions over CSR.
fn one_vector_csr(op: &RescaledOp<SparseMatrix>, block: &[f64], r: usize) -> Vec<Vec<f64>> {
    let d = op.dim();
    (0..r)
        .map(|j| {
            single_vector_moments(op, &block[j * d..(j + 1) * d], NUM_MOMENTS, Recursion::Plain)
        })
        .collect()
}

fn blocked(op: &RescaledOp<SparseMatrix>, block: &[f64], r: usize) -> Vec<Vec<f64>> {
    block_vector_moments(op, block, r, NUM_MOMENTS, Recursion::Plain)
}

/// Min-of-3 wall time in seconds.
fn time_it(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Manual min-of-3 sweep recorded to `results/ablation_formats.csv`.
fn write_results_csv() {
    let tb = paper_model();
    let csr = rescaled(tb.build_format(MatrixFormat::Csr));
    let ell = rescaled(tb.build_format(MatrixFormat::Ell));
    let stencil = rescaled(tb.build_format(MatrixFormat::Stencil));
    let d = csr.dim();

    let mut rows = vec!["variant,format,r,num_moments,seconds,per_vector_us".to_string()];
    let mut push = |variant: &str, format: &str, r: usize, secs: f64| {
        rows.push(format!(
            "{variant},{format},{r},{NUM_MOMENTS},{secs:.6},{:.2}",
            secs / r as f64 * 1e6
        ));
    };
    for &r in &WIDTHS {
        let block = start_block(d, r);
        push(
            "one_vector",
            "csr",
            r,
            time_it(|| {
                black_box(one_vector_csr(&csr, &block, r));
            }),
        );
        for (name, op) in [("csr", &csr), ("ell", &ell), ("stencil", &stencil)] {
            push(
                "blocked",
                name,
                r,
                time_it(|| {
                    black_box(blocked(op, &block, r));
                }),
            );
        }
    }
    // `cargo bench` runs the binary with the package directory as cwd, so
    // anchor the output at the workspace root instead of crates/bench.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("ablation_formats.csv"), rows.join("\n") + "\n")
        .expect("write ablation_formats.csv");
}

fn bench_formats(c: &mut Criterion) {
    let tb = paper_model();
    let variants = [
        ("csr", rescaled(tb.build_format(MatrixFormat::Csr))),
        ("ell", rescaled(tb.build_format(MatrixFormat::Ell))),
        ("stencil", rescaled(tb.build_format(MatrixFormat::Stencil))),
    ];
    let d = variants[0].1.dim();
    let mut group = c.benchmark_group("ablation_formats");
    group.sample_size(5);
    for &r in &WIDTHS {
        let block = start_block(d, r);
        group.bench_with_input(BenchmarkId::new("one_vector_csr", r), &r, |b, &r| {
            b.iter(|| black_box(one_vector_csr(&variants[0].1, &block, r)));
        });
        for (name, op) in &variants {
            group.bench_with_input(BenchmarkId::new(format!("blocked_{name}"), r), &r, |b, &r| {
                b.iter(|| black_box(blocked(op, &block, r)));
            });
        }
    }
    group.finish();
}

fn main() {
    write_results_csv();
    let mut c = Criterion::default();
    bench_formats(&mut c);
}
