//! Tracing overhead guard: the observability layer must be free when no
//! trace session is active. Benchmarks `stochastic_moments` — the hottest
//! instrumented primitive — with tracing disabled (the default) and with a
//! live session, on the same rescaled operator. The disabled case's cost
//! relative to an uninstrumented build is a single relaxed atomic load per
//! span site, which is far below run-to-run noise; the enabled case bounds
//! the worst-case session cost (one mutex hop per span plus counter
//! mirroring).

use criterion::{criterion_group, criterion_main, Criterion};
use kpm::prelude::*;
use kpm_lattice::dense_random_symmetric;
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let h = dense_random_symmetric(256, 1.0, 42);
    let params = KpmParams::new(64).with_random_vectors(4, 2).with_seed(3);
    let bounds = h.spectral_bounds(params.bounds).unwrap();
    let rescaled = rescale(&h, bounds, params.padding).unwrap();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);

    group.bench_function("moments_tracing_disabled", |b| {
        assert!(!kpm::obs::enabled(), "no trace session may be active here");
        b.iter(|| black_box(stochastic_moments(&rescaled, &params)));
    });

    group.bench_function("moments_tracing_enabled", |b| {
        let handle = TraceHandle::begin();
        b.iter(|| black_box(stochastic_moments(&rescaled, &params)));
        let report = handle.finish();
        assert!(report.span_total_us("kpm.moments") > 0, "spans must have been recorded");
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
