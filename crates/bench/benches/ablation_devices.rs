//! Multi-device ablation bench: prices the owner-computes realization
//! split of the event pipeline at 1..8 devices (the curve the repro
//! binary writes to `ablation_devices.csv`). The pricing walks per-engine
//! command queues and an event heap, so this also guards the discrete
//! event scheduler against becoming the bottleneck of the repro binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpm_bench::figures;
use kpm_stream::StreamKpmEngine;
use kpm_streamsim::{GpuSpec, MomentRunPlan};
use std::hint::black_box;

fn bench_device_split(c: &mut Criterion) {
    let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let shape = engine.shape_for(1000, 7000, false, 1024, 1792);
    let mut group = c.benchmark_group("ablation_devices");
    group.sample_size(30);

    for &devices in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("pipeline_split", devices), &devices, |b, &n| {
            b.iter(|| {
                black_box(
                    MomentRunPlan::new(shape)
                        .with_devices(n)
                        .run(engine.device().spec(), 0.2)
                        .total,
                )
            });
        });
    }

    // The full curve, both mappings — exactly what the repro binary emits.
    group.bench_function("scaling_curve_full", |b| {
        b.iter(|| black_box(figures::device_scaling(&[1, 2, 4, 8])));
    });
    group.finish();
}

criterion_group!(benches, bench_device_split);
criterion_main!(benches);
