//! Locality-on vs locality-off fleet-scheduling ablation.
//!
//! A repeated-spec workload over a persistent 8-worker fleet: round 1
//! computes six distinct cubic lattices cold (N = 128); round 2 re-runs
//! the same lattices and seeds at N = 64 — in *reverse* order, the way a
//! repeat workload actually arrives — whose per-realization rows are
//! bitwise prefixes of round 1's. A shard routed back to the worker that
//! computed it in round 1 is served from the warm inventory without
//! recomputation. With locality scoring on, the scheduler finds those
//! workers regardless of arrival order; with `locality: false` (the CLI's
//! `--no-locality`) placement is least-loaded, which under the reversed
//! arrival order lands shards on cold workers and recomputes. (Submitting
//! the repeat round in the *same* order would let least-loaded placement
//! mirror round 1 exactly and warm every shard by accident.)
//!
//! Results land in `results/ablation_fleet.csv` with per-round placement
//! counters and a `speedup_vs_no_locality` column on the warm round — the
//! acceptance evidence that warm routing yields cache-hit placements and
//! measurably reduces repeat-job latency.

use criterion::{BenchmarkId, Criterion};
use kpm_fleet::{Fleet, FleetClient, FleetPolicy, FleetStats};
use kpm_shard::transport::loopback_pair;
use kpm_shard::worker::serve_endpoint;
use std::hint::black_box;
use std::time::Instant;

const WORKERS: usize = 8;
const SEED: u64 = 7;
/// Two shards per job on eight workers: jobs *can* concentrate, so warm
/// routing has room to matter (with shards == workers every worker warms
/// up in round 1 and the modes become indistinguishable).
const SHARDS_PER_JOB: usize = 2;
const COLD_MOMENTS: usize = 128;
const WARM_MOMENTS: usize = 64;
const REPS: usize = 3;

fn spawn_fleet(locality: bool) -> Fleet {
    let endpoints = (0..WORKERS)
        .map(|i| {
            let (coord, worker) = loopback_pair(&format!("ablate-{i}"));
            std::thread::spawn(move || serve_endpoint(worker));
            coord
        })
        .collect();
    let policy = FleetPolicy { shards_per_job: SHARDS_PER_JOB, locality, ..FleetPolicy::default() };
    Fleet::start(endpoints, policy, None).expect("start fleet")
}

fn lattices() -> Vec<String> {
    (12usize..18).map(|l| format!("cubic:{l},{l},{l}")).collect()
}

/// Submits the whole workload concurrently and waits; returns wall
/// seconds. Same seeds both rounds — round 2's lower moment order is what
/// makes round 1's rows reusable prefixes.
fn run_round(client: &FleetClient, moments: usize, reverse: bool) -> f64 {
    let mut lats = lattices();
    if reverse {
        lats.reverse();
    }
    let t = Instant::now();
    let rxs: Vec<_> = lats
        .iter()
        .map(|lat| {
            let line = format!("dos lattice={lat} moments={moments} random=2 sets=2 seed={SEED}");
            client.submit_async(&line).expect("submit")
        })
        .collect();
    for rx in rxs {
        rx.recv().expect("scheduler alive").expect("job succeeds");
    }
    t.elapsed().as_secs_f64()
}

struct RoundRow {
    seconds: f64,
    stats: FleetStats,
}

/// One fleet lifecycle: cold round, reversed warm round, with per-round
/// placement counter deltas. Min-of-`REPS` wall times (fresh fleet per
/// rep, so warm state never leaks between reps). Note: the tuning profile
/// store is process-global, so reps after the first report warm-profile
/// placements even on their cold round — an honest reading of the coarse
/// profile signal.
fn measure(locality: bool) -> (RoundRow, RoundRow) {
    let mut best_cold = f64::INFINITY;
    let mut best_warm = f64::INFINITY;
    let mut cold_stats = FleetStats::default();
    let mut warm_stats = FleetStats::default();
    for _ in 0..REPS {
        let fleet = spawn_fleet(locality);
        let client = fleet.client();
        let cold = run_round(&client, COLD_MOMENTS, false);
        let after_cold = fleet.stats().expect("stats");
        let warm = run_round(&client, WARM_MOMENTS, true);
        let after_warm = fleet.stats().expect("stats");
        if cold < best_cold {
            best_cold = cold;
            cold_stats = after_cold.clone();
        }
        if warm < best_warm {
            best_warm = warm;
            warm_stats = diff(&after_warm, &after_cold);
        }
        fleet.shutdown();
    }
    (
        RoundRow { seconds: best_cold, stats: cold_stats },
        RoundRow { seconds: best_warm, stats: warm_stats },
    )
}

/// Placement-counter delta between two cumulative snapshots.
fn diff(after: &FleetStats, before: &FleetStats) -> FleetStats {
    FleetStats {
        jobs_completed: after.jobs_completed - before.jobs_completed,
        place_warm_rows: after.place_warm_rows - before.place_warm_rows,
        place_warm_op: after.place_warm_op - before.place_warm_op,
        place_warm_profile: after.place_warm_profile - before.place_warm_profile,
        place_cold: after.place_cold - before.place_cold,
        steals: after.steals - before.steals,
        ..FleetStats::default()
    }
}

fn write_results_csv() {
    let jobs = lattices().len();
    let mut rows =
        vec!["mode,workers,jobs,round,num_moments,seconds,place_warm_rows,place_warm_op,\
         place_warm_profile,place_cold,steals,speedup_vs_no_locality"
            .to_string()];
    let (on_cold, on_warm) = measure(true);
    let (off_cold, off_warm) = measure(false);
    assert!(
        on_warm.stats.place_warm_rows + on_warm.stats.place_warm_op > 0,
        "locality-on warm round must place shards on warm workers: {:?}",
        on_warm.stats
    );
    let mut push = |mode: &str, round: &str, n: usize, r: &RoundRow, speedup: Option<f64>| {
        let s = &r.stats;
        rows.push(format!(
            "{mode},{WORKERS},{jobs},{round},{n},{:.6},{},{},{},{},{},{}",
            r.seconds,
            s.place_warm_rows,
            s.place_warm_op,
            s.place_warm_profile,
            s.place_cold,
            s.steals,
            speedup.map_or_else(|| "1.000".to_string(), |v| format!("{v:.3}")),
        ));
    };
    push("locality", "cold", COLD_MOMENTS, &on_cold, None);
    push(
        "locality",
        "warm-repeat",
        WARM_MOMENTS,
        &on_warm,
        Some(off_warm.seconds / on_warm.seconds),
    );
    push("no-locality", "cold", COLD_MOMENTS, &off_cold, None);
    push("no-locality", "warm-repeat", WARM_MOMENTS, &off_warm, None);

    // `cargo bench` runs with the package directory as cwd; anchor the
    // output at the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("ablation_fleet.csv"), rows.join("\n") + "\n")
        .expect("write ablation_fleet.csv");
}

fn bench_warm_repeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fleet");
    group.sample_size(3);
    for locality in [true, false] {
        let label = if locality { "locality" } else { "no-locality" };
        // Each sample is a full fleet lifecycle (spawn, cold round,
        // reversed repeat round): repeating the warm round on one fleet
        // would be answered from the coordinator's journal image after the
        // first call and time nothing.
        group.bench_with_input(BenchmarkId::new("cold-plus-repeat", label), &(), |b, ()| {
            b.iter(|| {
                let fleet = spawn_fleet(locality);
                let client = fleet.client();
                run_round(&client, COLD_MOMENTS, false);
                black_box(run_round(&client, WARM_MOMENTS, true));
                fleet.shutdown();
            });
        });
    }
    group.finish();
}

fn main() {
    write_results_csv();
    let mut c = Criterion::default();
    bench_warm_repeat(&mut c);
}
