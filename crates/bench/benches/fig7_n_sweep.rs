//! Fig. 7 companion bench: dense `H_SIZE = 128`, sweeping `N` — the
//! compute-bound axis. Measures the real CPU reference (dense matvec path)
//! and, separately, the modeled-time evaluation itself (the pricing is pure
//! arithmetic and should be microseconds — this guards against the cost
//! model accidentally becoming the bottleneck of the repro binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpm::moments::{stochastic_moments, KpmParams};
use kpm::rescale::{rescale, Boundable};
use kpm_lattice::dense_random_symmetric;
use kpm_stream::StreamKpmEngine;
use kpm_streamsim::GpuSpec;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let h = dense_random_symmetric(128, 1.0, 42);
    let mut group = c.benchmark_group("fig7_n_sweep");
    group.sample_size(10);

    for &n in &[32usize, 64, 128, 256] {
        let params = KpmParams::new(n).with_random_vectors(4, 2).with_seed(2);
        group.bench_with_input(BenchmarkId::new("cpu_reference_dense", n), &n, |b, _| {
            let bounds = h.spectral_bounds(params.bounds).unwrap();
            let rescaled = rescale(&h, bounds, params.padding).unwrap();
            b.iter(|| black_box(stochastic_moments(&rescaled, &params)));
        });
    }

    // Pricing a paper-scale estimate must stay trivially cheap — now via
    // the overlap-off event pipeline (same numbers as the retired analytic
    // model, but the pricing walks the command queue).
    let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    group.bench_function("model_estimate_paper_scale", |b| {
        b.iter(|| {
            let shape = engine.shape_for(128, 128 * 128, true, 2048, 1792);
            black_box(
                kpm_streamsim::MomentRunPlan::new(shape)
                    .with_overlap(false)
                    .total(engine.device().spec(), 0.2),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
