//! Ablation benches for algorithmic choices inside the core library:
//!
//! * plain vs moment-doubling recursion (the doubling should approach 2×
//!   on matvec-dominated workloads);
//! * FFT-backed DCT-III reconstruction vs the naive `O(K N)` sum;
//! * damping-kernel coefficient generation (all four kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpm::dct;
use kpm::kernels::KernelType;
use kpm::moments::{single_vector_moments, Recursion};
use kpm::random::{fill_random_vector, Distribution};
use kpm_lattice::paper_cubic_hamiltonian;
use kpm_linalg::gershgorin::gershgorin_csr;
use kpm_linalg::op::RescaledOp;
use std::hint::black_box;

fn bench_recursion(c: &mut Criterion) {
    let h = paper_cubic_hamiltonian();
    let b = gershgorin_csr(&h).padded(0.01);
    let op = RescaledOp::new(&h, b.a_plus(), b.a_minus());
    let mut r0 = vec![0.0; 1000];
    fill_random_vector(Distribution::Rademacher, 9, 0, 0, &mut r0);

    let mut group = c.benchmark_group("ablation_recursion");
    group.sample_size(10);
    for (name, rec) in [("plain", Recursion::Plain), ("doubling", Recursion::Doubling)] {
        group.bench_function(BenchmarkId::new(name, 256), |bch| {
            bch.iter(|| black_box(single_vector_moments(&op, &r0, 256, rec)));
        });
    }
    group.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    let coeffs: Vec<f64> = (0..512).map(|n| ((n as f64) * 0.11).sin() / (n + 1) as f64).collect();
    let mut group = c.benchmark_group("ablation_reconstruction");
    group.sample_size(20);
    for &k in &[1024usize, 4096] {
        group.bench_with_input(BenchmarkId::new("dct_fft", k), &k, |b, &k| {
            b.iter(|| black_box(dct::reconstruction_sums(&coeffs, k)));
        });
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, &k| {
            b.iter(|| black_box(dct::dct3_naive(&coeffs, k)));
        });
    }
    group.finish();
}

fn bench_kernel_coefficients(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kernel_coefficients");
    group.sample_size(30);
    let kernels = [
        ("jackson", KernelType::Jackson),
        ("lorentz", KernelType::Lorentz { lambda: 4.0 }),
        ("fejer", KernelType::Fejer),
        ("dirichlet", KernelType::Dirichlet),
    ];
    for (name, k) in kernels {
        group.bench_function(BenchmarkId::new(name, 2048), |b| {
            b.iter(|| black_box(k.coefficients(2048)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recursion, bench_reconstruction, bench_kernel_coefficients);
criterion_main!(benches);
