//! Fig. 8 companion bench: dense `H~`, sweeping `H_SIZE` at fixed `N` —
//! the memory-bound axis. The CPU reference's time per FLOP should climb
//! once the matrix leaves cache; Criterion's per-size throughput makes the
//! bend visible on real hardware too (this box's caches, not the modeled
//! Nehalem's).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kpm::moments::{stochastic_moments, KpmParams};
use kpm::rescale::{rescale, Boundable};
use kpm_lattice::dense_random_symmetric;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_size_sweep");
    group.sample_size(10);
    let n = 16usize;

    for &d in &[64usize, 128, 256, 512] {
        let h = dense_random_symmetric(d, 1.0, 7);
        let params = KpmParams::new(n).with_random_vectors(2, 1).with_seed(3);
        let flops = 2 * (d as u64) * (d as u64) * (n as u64 - 1) * 2;
        group.throughput(Throughput::Elements(flops));
        group.bench_with_input(BenchmarkId::new("cpu_reference_dense", d), &d, |b, _| {
            let bounds = h.spectral_bounds(params.bounds).unwrap();
            let rescaled = rescale(&h, bounds, params.padding).unwrap();
            b.iter(|| black_box(stochastic_moments(&rescaled, &params)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
