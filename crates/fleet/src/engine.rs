//! [`FleetEngine`]: the fleet as a `kpm-serve` [`MomentEngine`].
//!
//! The same hook [`kpm_shard::ShardedEngine`] uses, so `kpm fleet`
//! (batch or `--listen`) reuses the whole serve stack — queue, cache,
//! retries, CSV output — unchanged, and its outputs stay byte-identical
//! to `kpm batch`. The difference from the sharded engine: workers and
//! scheduler live across jobs, so repeat specs hit warm inventory and a
//! `--journal` makes interrupted runs resumable.

use crate::error::FleetError;
use crate::scheduler::FleetClient;
use kpm_serve::worker::compute_raw_moments;
use kpm_serve::{Backend, JobError, JobSpec, MomentEngine};
use kpm_shard::ShardJob;

/// Submits serve jobs to a running [`crate::Fleet`].
#[derive(Clone)]
pub struct FleetEngine {
    client: FleetClient,
}

impl FleetEngine {
    /// An engine backed by `client`'s fleet.
    pub fn new(client: FleetClient) -> Self {
        Self { client }
    }
}

impl MomentEngine for FleetEngine {
    /// Serves a DoS job from the fleet. Non-CPU backends and
    /// fault-injected specs are not shardable and fall back to the local
    /// pipeline, preserving serve's semantics for them (the sharded
    /// engine's rule, kept bit-for-bit).
    fn compute(
        &self,
        spec: &JobSpec,
        attempt: u32,
    ) -> Result<(kpm::MomentStats, f64, f64), JobError> {
        if spec.backend != Backend::Cpu || spec.fault.is_some() {
            return compute_raw_moments(spec, attempt);
        }
        let mut clean = spec.clone();
        clean.out = None; // output is serve's concern, not the workers'
        let job = ShardJob::Dos(clean);
        let to_engine_err = |e: FleetError| JobError::Engine(format!("fleet: {e}"));
        let (a_plus, a_minus) =
            job.bounds().map_err(|e| JobError::Engine(format!("fleet: {e}")))?;
        let stats = self
            .client
            .submit(&job.canonical())
            .map_err(to_engine_err)?
            .into_stats()
            .expect("dos jobs merge to stats");
        Ok((stats, a_plus, a_minus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Fleet, FleetPolicy};
    use kpm_shard::transport::loopback_pair;
    use kpm_shard::worker::serve_endpoint;

    fn local_fleet(n: usize) -> Fleet {
        let endpoints = (0..n)
            .map(|i| {
                let (coord, worker) = loopback_pair(&format!("engine-local-{i}"));
                std::thread::spawn(move || serve_endpoint(worker));
                coord
            })
            .collect();
        Fleet::start(endpoints, FleetPolicy::default(), None).unwrap()
    }

    const LINE: &str = "lattice=chain:40 moments=12 random=2 sets=2 seed=3";

    #[test]
    fn fleet_engine_matches_local_pipeline_bitwise() {
        let spec = JobSpec::parse(LINE).unwrap();
        let (direct, a_plus, a_minus) = compute_raw_moments(&spec, 0).unwrap();
        let fleet = local_fleet(2);
        let engine = FleetEngine::new(fleet.client());
        let (stats, ap, am) = engine.compute(&spec, 0).unwrap();
        assert_eq!(stats.mean, direct.mean);
        assert_eq!(stats.std_err, direct.std_err);
        assert_eq!((ap, am), (a_plus, a_minus));
        drop(fleet);
    }

    #[test]
    fn stream_backend_falls_back_to_local_compute() {
        let spec =
            JobSpec::parse("lattice=chain:24 moments=8 random=2 sets=1 backend=stream").unwrap();
        let fleet = local_fleet(1);
        let engine = FleetEngine::new(fleet.client());
        let (via_engine, ..) = engine.compute(&spec, 0).unwrap();
        let (direct, ..) = compute_raw_moments(&spec, 0).unwrap();
        assert_eq!(via_engine.mean, direct.mean);
        drop(fleet);
    }
}
