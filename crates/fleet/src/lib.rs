//! `kpm-fleet` — cache- and locality-aware multi-job scheduling over
//! shard workers, with a restartable merge journal.
//!
//! The shard layer (`kpm-shard`) runs *one* job over a worker set and
//! tears everything down. This crate keeps the workers — and their warm
//! state — alive across *many* jobs:
//!
//! - **Locality-aware routing** ([`scheduler`]): workers advertise a
//!   content-addressed inventory (assembled operators, warm
//!   per-realization moment rows, tuned execution profiles); the
//!   scheduler scores placements so a job's shards land where its work
//!   already lives, and falls back to least-loaded when nothing is warm.
//! - **Cross-job balancing**: an idle worker steals shards from a warm
//!   worker's backlog. The frozen `(seed, s, r)` RNG contract makes the
//!   rows identical wherever they are computed, so stealing never
//!   changes a single bit of the merge.
//! - **Restartable merges** ([`journal`]): accepted rows hit an fsync'd
//!   on-disk journal *before* they count; a coordinator that dies can be
//!   restarted on the same journal directory and resumes — recomputing
//!   only unacknowledged work — with a bitwise-identical result.
//!
//! [`FleetEngine`] plugs the fleet into `kpm-serve`'s [`MomentEngine`]
//! hook, so `kpm fleet` keeps the serve queue, cache, and CSV output
//! byte-compatible with `kpm batch`. See DESIGN.md §13.
//!
//! [`MomentEngine`]: kpm_serve::MomentEngine

pub mod engine;
pub mod error;
pub mod journal;
pub mod scheduler;

pub use engine::FleetEngine;
pub use error::FleetError;
pub use journal::{Journal, Replayed};
pub use scheduler::{Fleet, FleetClient, FleetPolicy, FleetStats};
