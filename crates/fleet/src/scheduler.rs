//! The fleet scheduler: many jobs, many workers, locality-aware placement,
//! journaled merges.
//!
//! One drive thread owns all state. Worker connections feed it frames
//! through pump threads (the shard coordinator's pattern); submissions,
//! joins, and stats queries arrive on the same event channel from
//! [`FleetClient`] handles. Per job the scheduler is exactly the shard
//! coordinator — fixed deterministic shard plan, canonical-order merge,
//! heartbeat death detection, backoff reassignment, speculative duplicates
//! — so every job's moments stay bitwise identical to a single-process
//! run. What the fleet adds across jobs:
//!
//! - **Locality-aware routing**: each worker's warm state (advertised via
//!   [`Frame::InventoryQuery`] at join, then tracked incrementally from
//!   results) is scored against each pending shard — warm moment rows
//!   (weight 4) beat a warm assembled operator (2) beat a tuned-process
//!   signal (1) beat cold — so repeat jobs land where their work already
//!   lives.
//! - **Cross-job balancing ("stealing")**: a warm worker whose queue runs
//!   deeper than an idle worker's by `STEAL_DEPTH` loses the shard to
//!   the idle one. The frozen `(seed, s, r)` RNG contract makes the result
//!   identical wherever it runs, so stealing is free of determinism cost.
//! - **Restartable merges**: accepted rows are journaled (fsync) *before*
//!   they count ([`crate::journal`]); a restarted scheduler pre-fills
//!   shards from the replayed journal and resumes without recomputing.

use crate::error::FleetError;
use crate::journal::{Journal, Replayed};
use kpm_shard::transport::Endpoint;
use kpm_shard::wire::{Frame, RowRun};
use kpm_shard::{MergedMoments, ShardJob};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::ops::Range;
use std::path::Path;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Pump-thread poll granularity (bounds shutdown latency only).
const PUMP_POLL: Duration = Duration::from_millis(100);
/// Drive-loop event wait (bounds heartbeat/dispatch latency only).
const EVENT_POLL: Duration = Duration::from_millis(20);
/// Queue-depth gap at which an idle worker steals a shard from the warm
/// worker the locality score preferred.
const STEAL_DEPTH: usize = 2;

/// Scheduling knobs. The shard-plan shape (`shards_per_job`) is fixed per
/// policy — independent of the worker count — so a restarted fleet
/// produces the same shard ranges and journal replay aligns exactly.
#[derive(Debug, Clone, Copy)]
pub struct FleetPolicy {
    /// Shards each job is split into (bounded by the job's unit count).
    pub shards_per_job: usize,
    /// How often every live worker is pinged.
    pub heartbeat_interval: Duration,
    /// Silence longer than this declares a worker dead.
    pub heartbeat_timeout: Duration,
    /// In-flight longer than this triggers a speculative duplicate.
    pub speculative_after: Duration,
    /// Dispatch attempts per shard before its job fails.
    pub max_attempts: u32,
    /// First reassignment backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Whether placement scores worker warm state (off = least-loaded).
    pub locality: bool,
    /// How long a freshly joined worker may go un-inventoried before the
    /// scheduler dispatches to it anyway.
    pub inventory_wait: Duration,
    /// How long the fleet tolerates zero live workers before failing the
    /// jobs that are pending (a joining worker resets the clock).
    pub no_worker_grace: Duration,
    /// Test hook: simulate a coordinator crash (stop without replying or
    /// shutting workers down) after this many results were journaled.
    pub kill_after_results: Option<usize>,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        Self {
            shards_per_job: 4,
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(3),
            speculative_after: Duration::from_secs(30),
            max_attempts: 8,
            backoff_base: Duration::from_millis(25),
            locality: true,
            inventory_wait: Duration::from_millis(300),
            no_worker_grace: Duration::from_secs(5),
            kill_after_results: None,
        }
    }
}

/// Counters the fleet accumulates; also exported as `fleet.*` obs
/// counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FleetStats {
    /// Jobs merged and acknowledged.
    pub jobs_completed: u64,
    /// Jobs that terminally failed.
    pub jobs_failed: u64,
    /// Placements routed to a worker holding warm moment rows.
    pub place_warm_rows: u64,
    /// Placements routed to a worker holding the assembled operator.
    pub place_warm_op: u64,
    /// Placements routed to a tuned (profiled) worker, all else cold.
    pub place_warm_profile: u64,
    /// Placements with no warm state anywhere.
    pub place_cold: u64,
    /// Shards an idle worker took although locality preferred another.
    pub steals: u64,
    /// Bytes appended to the journal by this scheduler.
    pub journal_bytes: u64,
    /// Rows recovered from a previous scheduler's journal.
    pub replayed_rows: u64,
    /// Shards pre-filled (journal replay or duplicate submission).
    pub prefilled_shards: u64,
    /// Workers that joined over the fleet's lifetime.
    pub workers_joined: u64,
    /// Workers declared dead.
    pub workers_dead: u64,
}

impl FleetStats {
    /// One-line JSON rendering for `--stats` output and logs.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\"kind\":\"fleet-stats\"");
        let mut put = |k: &str, v: u64| {
            let _ = write!(s, ",\"{k}\":{v}");
        };
        put("jobs_completed", self.jobs_completed);
        put("jobs_failed", self.jobs_failed);
        put("place_warm_rows", self.place_warm_rows);
        put("place_warm_op", self.place_warm_op);
        put("place_warm_profile", self.place_warm_profile);
        put("place_cold", self.place_cold);
        put("steals", self.steals);
        put("journal_bytes", self.journal_bytes);
        put("replayed_rows", self.replayed_rows);
        put("prefilled_shards", self.prefilled_shards);
        put("workers_joined", self.workers_joined);
        put("workers_dead", self.workers_dead);
        s.push('}');
        s
    }
}

/// Messages from [`Fleet`]/[`FleetClient`] handles to the drive thread.
enum FleetMsg {
    Submit { line: String, reply: Sender<Result<MergedMoments, FleetError>> },
    Join(Endpoint),
    Stats { reply: Sender<FleetStats> },
    Shutdown,
}

enum Event {
    Frame(usize, Frame),
    Closed(usize),
    Msg(FleetMsg),
}

/// A running fleet scheduler. Dropping it shuts the drive thread down.
pub struct Fleet {
    tx: Sender<Event>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Fleet {
    /// Starts a scheduler over `endpoints`, replaying `journal_dir` if one
    /// is given (and journaling into it from then on).
    ///
    /// # Errors
    /// [`FleetError::Journal`] when the journal cannot be opened.
    pub fn start(
        endpoints: Vec<Endpoint>,
        policy: FleetPolicy,
        journal_dir: Option<&Path>,
    ) -> Result<Fleet, FleetError> {
        let (journal, replayed) = match journal_dir {
            Some(dir) => {
                let (j, r) = Journal::open(dir)?;
                (Some(j), r)
            }
            None => (None, Replayed::default()),
        };
        let (tx, rx) = mpsc::channel();
        let ev_tx = tx.clone();
        let handle = std::thread::Builder::new()
            .name("kpm-fleet-drive".into())
            .spawn(move || Scheduler::new(policy, journal, replayed, ev_tx).drive(&rx))
            .map_err(|e| FleetError::Journal(e.to_string()))?;
        let fleet = Fleet { tx, handle: Some(handle) };
        for ep in endpoints {
            fleet.join_worker(ep)?;
        }
        Ok(fleet)
    }

    /// A clonable submission handle (usable from any thread).
    pub fn client(&self) -> FleetClient {
        FleetClient { tx: self.tx.clone() }
    }

    /// Adds a worker connection to the running fleet.
    ///
    /// # Errors
    /// [`FleetError::Stopped`] when the scheduler is gone.
    pub fn join_worker(&self, endpoint: Endpoint) -> Result<(), FleetError> {
        self.tx.send(Event::Msg(FleetMsg::Join(endpoint))).map_err(|_| FleetError::Stopped)
    }

    /// Snapshot of the fleet counters.
    ///
    /// # Errors
    /// [`FleetError::Stopped`] when the scheduler is gone.
    pub fn stats(&self) -> Result<FleetStats, FleetError> {
        let (tx, rx) = mpsc::channel();
        self.tx.send(Event::Msg(FleetMsg::Stats { reply: tx })).map_err(|_| FleetError::Stopped)?;
        rx.recv().map_err(|_| FleetError::Stopped)
    }

    /// Stops the scheduler: live workers get a shutdown frame, pending
    /// submissions fail with [`FleetError::Stopped`]. Returns the final
    /// counters when the drive thread is still answering.
    pub fn shutdown(mut self) -> Option<FleetStats> {
        let stats = self.stats().ok();
        self.stop();
        stats
    }

    fn stop(&mut self) {
        let _ = self.tx.send(Event::Msg(FleetMsg::Shutdown));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Clonable handle that submits jobs to a running [`Fleet`].
#[derive(Clone)]
pub struct FleetClient {
    tx: Sender<Event>,
}

impl FleetClient {
    /// Submits a canonical shard-job line and blocks for the merged
    /// moments.
    ///
    /// # Errors
    /// [`FleetError`] per job (invalid line, worker failure, no workers) or
    /// [`FleetError::Stopped`] when the scheduler died first.
    pub fn submit(&self, line: &str) -> Result<MergedMoments, FleetError> {
        self.submit_async(line)?.recv().map_err(|_| FleetError::Stopped)?
    }

    /// Submits without blocking; the receiver yields the job's outcome.
    /// Concurrent submissions are what multi-job scheduling feeds on.
    ///
    /// # Errors
    /// [`FleetError::Stopped`] when the scheduler is gone.
    pub fn submit_async(
        &self,
        line: &str,
    ) -> Result<Receiver<Result<MergedMoments, FleetError>>, FleetError> {
        let (tx, rx) = mpsc::channel();
        self.tx
            .send(Event::Msg(FleetMsg::Submit { line: line.to_string(), reply: tx }))
            .map_err(|_| FleetError::Stopped)?;
        Ok(rx)
    }
}

// --- drive-thread state -------------------------------------------------

struct WorkerSt {
    peer: String,
    tx: std::sync::Arc<dyn kpm_shard::transport::FrameSink>,
    alive: bool,
    last_seen: Instant,
    joined_at: Instant,
    /// `(job seq, shard)` pairs dispatched and unanswered.
    inflight: Vec<(u32, u32)>,
    /// Job seqs whose spec line this connection has received.
    announced: HashSet<u32>,
    /// Warm-state model: advertised at join, then updated from results.
    inv_seen: bool,
    inv_ops: HashSet<u64>,
    inv_rows: Vec<RowRun>,
    inv_tuned: bool,
}

struct ShardSt {
    range: Range<usize>,
    rows: Option<Vec<Vec<f64>>>,
    attempts: u32,
    eligible_at: Instant,
    assigned: Vec<usize>,
    dispatched_at: Instant,
}

struct JobSt {
    job: ShardJob,
    line: String,
    /// Content hash of the canonical line — the journal key, stable across
    /// restarts and shared by duplicate submissions.
    hash: u64,
    op_key: u64,
    row_key: u64,
    need: usize,
    prefix: bool,
    shards: Vec<ShardSt>,
    done: usize,
    reply: Option<Sender<Result<MergedMoments, FleetError>>>,
    finished: bool,
}

enum Flow {
    Continue,
    Stop,
    /// `kill_after_results` tripped: vanish like a crash (no replies, no
    /// worker shutdown frames).
    Killed,
}

struct Scheduler {
    policy: FleetPolicy,
    journal: Option<Journal>,
    /// In-memory journal image: job hash → idx → row. Seeded from replay,
    /// extended by every accepted result — pre-fills restarted *and*
    /// duplicate jobs.
    journaled: HashMap<u64, HashMap<u64, Vec<f64>>>,
    recorded_jobs: HashSet<u64>,
    workers: Vec<WorkerSt>,
    jobs: Vec<JobSt>,
    ev_tx: Sender<Event>,
    stats: FleetStats,
    nonce: u64,
    results_journaled: usize,
    all_dead_since: Option<Instant>,
}

impl Scheduler {
    fn new(
        policy: FleetPolicy,
        journal: Option<Journal>,
        replayed: Replayed,
        ev_tx: Sender<Event>,
    ) -> Self {
        let stats = FleetStats { replayed_rows: replayed.row_count(), ..FleetStats::default() };
        Scheduler {
            policy,
            journal,
            journaled: replayed.rows,
            recorded_jobs: replayed.jobs.keys().copied().collect(),
            workers: Vec::new(),
            jobs: Vec::new(),
            ev_tx,
            stats,
            nonce: 0,
            results_journaled: 0,
            all_dead_since: None,
        }
    }

    fn drive(mut self, events: &Receiver<Event>) {
        let mut last_ping = Instant::now();
        loop {
            let now = Instant::now();
            // Hung-worker detection.
            for i in 0..self.workers.len() {
                if self.workers[i].alive
                    && now.duration_since(self.workers[i].last_seen) > self.policy.heartbeat_timeout
                {
                    self.kill_worker(i, now);
                }
            }
            self.fail_if_workerless(now);
            // Heartbeats.
            if now.duration_since(last_ping) >= self.policy.heartbeat_interval {
                last_ping = now;
                for i in 0..self.workers.len() {
                    if self.workers[i].alive {
                        self.nonce += 1;
                        let ping = Frame::Ping { nonce: self.nonce };
                        if self.workers[i].tx.send(&ping).is_err() {
                            self.kill_worker(i, now);
                        }
                    }
                }
            }
            self.dispatch_pending(now);
            self.dispatch_speculative(now);
            // Drain events.
            match events.recv_timeout(EVENT_POLL) {
                Ok(ev) => {
                    match self.handle(ev) {
                        Flow::Continue => {}
                        Flow::Stop => return self.wind_down(),
                        Flow::Killed => return,
                    }
                    while let Ok(ev) = events.try_recv() {
                        match self.handle(ev) {
                            Flow::Continue => {}
                            Flow::Stop => return self.wind_down(),
                            Flow::Killed => return,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                // Every handle (Fleet + clients) is gone: nothing can ever
                // submit or join again.
                Err(RecvTimeoutError::Disconnected) => return self.wind_down(),
            }
        }
    }

    fn wind_down(&mut self) {
        for w in self.workers.iter().filter(|w| w.alive) {
            let _ = w.tx.send(&Frame::Shutdown);
        }
        // Dropping `self.workers` closes the endpoints; pumps exit on their
        // dead connections or failed event sends.
    }

    fn handle(&mut self, ev: Event) -> Flow {
        match ev {
            Event::Closed(i) => {
                self.kill_worker(i, Instant::now());
                Flow::Continue
            }
            Event::Msg(FleetMsg::Shutdown) => Flow::Stop,
            Event::Msg(FleetMsg::Stats { reply }) => {
                let _ = reply.send(self.stats.clone());
                Flow::Continue
            }
            Event::Msg(FleetMsg::Join(ep)) => {
                self.join(ep);
                Flow::Continue
            }
            Event::Msg(FleetMsg::Submit { line, reply }) => {
                self.submit(&line, reply);
                Flow::Continue
            }
            Event::Frame(i, frame) => {
                self.workers[i].last_seen = Instant::now();
                match frame {
                    Frame::Pong { .. } => Flow::Continue,
                    Frame::Inventory(report) => {
                        let w = &mut self.workers[i];
                        w.inv_ops = report.ops.into_iter().collect();
                        w.inv_rows = report.rows;
                        w.inv_tuned = w.inv_tuned || !report.profiles.is_empty();
                        w.inv_seen = true;
                        Flow::Continue
                    }
                    Frame::Result(res) => self.accept_result(i, res),
                    Frame::WorkerError { job, shard, message } => {
                        let seq = job as usize;
                        if seq < self.jobs.len() {
                            self.fail_job(
                                seq,
                                FleetError::Shard(format!(
                                    "worker failed shard {shard}: {message}"
                                )),
                            );
                        }
                        Flow::Continue
                    }
                    _ => Flow::Continue,
                }
            }
        }
    }

    fn join(&mut self, ep: Endpoint) {
        let Endpoint { peer, tx, mut rx } = ep;
        let i = self.workers.len();
        let now = Instant::now();
        self.workers.push(WorkerSt {
            peer,
            tx,
            alive: true,
            last_seen: now,
            joined_at: now,
            inflight: Vec::new(),
            announced: HashSet::new(),
            inv_seen: false,
            inv_ops: HashSet::new(),
            inv_rows: Vec::new(),
            inv_tuned: false,
        });
        self.stats.workers_joined += 1;
        self.all_dead_since = None;
        let evt = self.ev_tx.clone();
        std::thread::Builder::new()
            .name(format!("kpm-fleet-pump-{i}"))
            .spawn(move || loop {
                match rx.recv_timeout(PUMP_POLL) {
                    Ok(Some(frame)) => {
                        if evt.send(Event::Frame(i, frame)).is_err() {
                            break;
                        }
                    }
                    Ok(None) => continue,
                    Err(_) => {
                        let _ = evt.send(Event::Closed(i));
                        break;
                    }
                }
            })
            .expect("spawn fleet pump thread");
        // Ask for the warm-state inventory; placement prefers answered
        // workers until `inventory_wait` expires.
        if self.workers[i].tx.send(&Frame::InventoryQuery).is_err() {
            self.kill_worker(i, now);
        }
    }

    fn submit(&mut self, line: &str, reply: Sender<Result<MergedMoments, FleetError>>) {
        let job = match ShardJob::parse(line) {
            Ok(j) => j,
            Err(e) => {
                let _ = reply.send(Err(e.into()));
                return;
            }
        };
        let canonical = job.canonical();
        let hash = kpm::tune::fnv1a(canonical.as_bytes());
        let total = job.total_units();
        let num_shards = total.min(self.policy.shards_per_job.max(1)).max(1);
        let now = Instant::now();
        let need = job.moment_len();
        if let (Some(journal), false) = (self.journal.as_mut(), self.recorded_jobs.contains(&hash))
        {
            if let Err(e) = journal.record_job(hash, &canonical) {
                let _ = reply.send(Err(e));
                return;
            }
            self.recorded_jobs.insert(hash);
        }
        let mut shards: Vec<ShardSt> = kpm::shard_plan(total, num_shards)
            .into_iter()
            .map(|range| ShardSt {
                range,
                rows: None,
                attempts: 0,
                eligible_at: now,
                assigned: Vec::new(),
                dispatched_at: now,
            })
            .collect();
        // Pre-fill from the journal image: rows this hash already has —
        // replayed from a previous scheduler, or journaled moments ago for
        // a duplicate submission.
        let mut done = 0;
        if let Some(rows) = self.journaled.get(&hash) {
            for s in &mut shards {
                let warm: Option<Vec<Vec<f64>>> = s
                    .range
                    .clone()
                    .map(|idx| rows.get(&(idx as u64)).filter(|r| r.len() == need).cloned())
                    .collect();
                if let Some(w) = warm {
                    s.rows = Some(w);
                    done += 1;
                    self.stats.prefilled_shards += 1;
                    kpm_obs::counter_add("fleet.journal.prefilled", 1);
                }
            }
        }
        let seq = self.jobs.len();
        self.jobs.push(JobSt {
            op_key: job.op_key(),
            row_key: job.row_key(),
            prefix: job.prefix_extendable(),
            line: canonical,
            job,
            hash,
            need,
            shards,
            done,
            reply: Some(reply),
            finished: false,
        });
        kpm_obs::counter_add("fleet.jobs.submitted", 1);
        if self.jobs[seq].done == self.jobs[seq].shards.len() {
            self.complete_job(seq);
        }
    }

    fn complete_job(&mut self, seq: usize) {
        let j = &mut self.jobs[seq];
        j.finished = true;
        let rows: Vec<Vec<f64>> =
            j.shards.iter_mut().flat_map(|s| s.rows.take().expect("all shards done")).collect();
        let result = j.job.merge(&rows).map_err(FleetError::from);
        if result.is_ok() {
            self.stats.jobs_completed += 1;
            kpm_obs::counter_add("fleet.jobs.completed", 1);
        } else {
            self.stats.jobs_failed += 1;
            kpm_obs::counter_add("fleet.jobs.failed", 1);
        }
        if let Some(reply) = j.reply.take() {
            let _ = reply.send(result);
        }
    }

    fn fail_job(&mut self, seq: usize, err: FleetError) {
        let j = &mut self.jobs[seq];
        if j.finished {
            return;
        }
        j.finished = true;
        self.stats.jobs_failed += 1;
        kpm_obs::counter_add("fleet.jobs.failed", 1);
        if let Some(reply) = j.reply.take() {
            let _ = reply.send(Err(err));
        }
        for w in &mut self.workers {
            w.inflight.retain(|&(job, _)| job as usize != seq);
        }
    }

    fn accept_result(&mut self, i: usize, res: kpm_shard::wire::ShardResult) -> Flow {
        let seq = res.job as usize;
        self.workers[i]
            .inflight
            .retain(|&(job, shard)| (job, shard) != (res.job as u32, res.shard));
        let Some(j) = self.jobs.get_mut(seq) else { return Flow::Continue };
        let k = res.shard as usize;
        if j.finished || k >= j.shards.len() || j.shards[k].rows.is_some() {
            return Flow::Continue; // duplicate, speculative loser, or stale
        }
        let want_rows = j.shards[k].range.len();
        if res.rows.len() != want_rows || res.rows.iter().any(|r| r.len() != j.need) {
            let peer = self.workers[i].peer.clone();
            self.fail_job(
                seq,
                FleetError::Shard(format!("worker {peer} returned malformed rows for shard {k}")),
            );
            return Flow::Continue;
        }
        // Journal before ack: the shard only counts once its rows are
        // durable, which is what makes a coordinator restart resumable.
        let j = &mut self.jobs[seq];
        let start = j.shards[k].range.start as u64;
        if let Some(journal) = self.journal.as_mut() {
            if let Err(e) = journal.record_rows(j.hash, start, &res.rows) {
                self.fail_job(seq, e);
                return Flow::Continue;
            }
            self.stats.journal_bytes = journal.bytes_written();
        }
        let image = self.journaled.entry(j.hash).or_default();
        for (off, row) in res.rows.iter().enumerate() {
            image.insert(start + off as u64, row.clone());
        }
        // Update the worker's warm-state model: it now demonstrably holds
        // this operator and these rows.
        let (op_key, row_key, need) = (j.op_key, j.row_key, j.need);
        let end = j.shards[k].range.end as u64;
        let w = &mut self.workers[i];
        w.inv_ops.insert(op_key);
        w.inv_rows.push(RowRun { key: row_key, start, end, n: need as u32 });
        let j = &mut self.jobs[seq];
        j.shards[k].rows = Some(res.rows);
        j.shards[k].assigned.clear();
        j.done += 1;
        self.results_journaled += 1;
        kpm_obs::counter_add("fleet.shards.completed", 1);
        if j.done == j.shards.len() {
            self.complete_job(seq);
        }
        if self.policy.kill_after_results.is_some_and(|k| self.results_journaled >= k) {
            return Flow::Killed;
        }
        Flow::Continue
    }

    fn kill_worker(&mut self, i: usize, now: Instant) {
        if !self.workers[i].alive {
            return;
        }
        self.workers[i].alive = false;
        self.stats.workers_dead += 1;
        kpm_obs::counter_add("fleet.workers.dead", 1);
        let lost = std::mem::take(&mut self.workers[i].inflight);
        for (job, shard) in lost {
            let Some(j) = self.jobs.get_mut(job as usize) else { continue };
            let s = &mut j.shards[shard as usize];
            s.assigned.retain(|&w| w != i);
            if s.rows.is_none() && s.assigned.is_empty() {
                let exp = s.attempts.min(10);
                s.eligible_at = now + self.policy.backoff_base * 2u32.saturating_pow(exp);
                kpm_obs::counter_add("fleet.shards.reassigned", 1);
            }
        }
    }

    fn fail_if_workerless(&mut self, now: Instant) {
        if self.workers.iter().any(|w| w.alive) {
            self.all_dead_since = None;
            return;
        }
        let pending: Vec<usize> =
            (0..self.jobs.len()).filter(|&s| !self.jobs[s].finished).collect();
        if pending.is_empty() {
            self.all_dead_since = None;
            return;
        }
        let since = *self.all_dead_since.get_or_insert(now);
        if now.duration_since(since) < self.policy.no_worker_grace {
            return; // a worker may still join (or the fleet just started)
        }
        for seq in pending {
            let left = self.jobs[seq].shards.iter().filter(|s| s.rows.is_none()).count();
            self.fail_job(seq, FleetError::NoWorkers { pending: left });
        }
        self.all_dead_since = Some(now);
    }

    /// Locality score of placing one shard of `job` on worker `w`:
    /// warm rows (4) + warm operator (2) + tuned process (1).
    fn score(job: &JobSt, w: &WorkerSt, range: &Range<usize>) -> u32 {
        let rows_warm = w.inv_rows.iter().any(|r| {
            r.key == job.row_key
                && (r.n as usize == job.need || (job.prefix && r.n as usize > job.need))
                && r.start < range.end as u64
                && r.end > range.start as u64
        });
        let op_warm = w.inv_ops.contains(&job.op_key);
        u32::from(rows_warm) * 4 + u32::from(op_warm) * 2 + u32::from(w.inv_tuned)
    }

    fn count_placement(&mut self, score: u32) {
        let (field, name) = if score >= 4 {
            (&mut self.stats.place_warm_rows, "fleet.place.warm_rows")
        } else if score >= 2 {
            (&mut self.stats.place_warm_op, "fleet.place.warm_op")
        } else if score >= 1 {
            (&mut self.stats.place_warm_profile, "fleet.place.warm_profile")
        } else {
            (&mut self.stats.place_cold, "fleet.place.cold")
        };
        *field += 1;
        kpm_obs::counter_add(name, 1);
    }

    /// Picks a worker for one shard: the best-scoring warm worker, unless
    /// its queue is [`STEAL_DEPTH`] deeper than an idle lower-scoring
    /// worker's — then the idle worker steals the shard.
    fn pick_worker(&mut self, seq: usize, range: &Range<usize>, now: Instant) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.workers.len())
            .filter(|&i| {
                let w = &self.workers[i];
                w.alive
                    && (w.inv_seen || now.duration_since(w.joined_at) >= self.policy.inventory_wait)
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let least =
            *candidates.iter().min_by_key(|&&i| self.workers[i].inflight.len()).expect("non-empty");
        if !self.policy.locality {
            return Some(least);
        }
        let job = &self.jobs[seq];
        let best = *candidates
            .iter()
            .max_by_key(|&&i| {
                (
                    Self::score(job, &self.workers[i], range),
                    std::cmp::Reverse(self.workers[i].inflight.len()),
                )
            })
            .expect("non-empty");
        let best_score = Self::score(job, &self.workers[best], range);
        let least_score = Self::score(job, &self.workers[least], range);
        if best_score > least_score
            && self.workers[best].inflight.len() >= self.workers[least].inflight.len() + STEAL_DEPTH
        {
            // Backlog beats affinity: the idle worker takes the shard.
            self.stats.steals += 1;
            kpm_obs::counter_add("fleet.steals", 1);
            self.count_placement(least_score);
            return Some(least);
        }
        self.count_placement(best_score);
        Some(best)
    }

    fn dispatch_pending(&mut self, now: Instant) {
        for seq in 0..self.jobs.len() {
            if self.jobs[seq].finished {
                continue;
            }
            for k in 0..self.jobs[seq].shards.len() {
                let s = &self.jobs[seq].shards[k];
                if s.rows.is_some() || !s.assigned.is_empty() || s.eligible_at > now {
                    continue;
                }
                if s.attempts >= self.policy.max_attempts {
                    let attempts = s.attempts;
                    self.fail_job(
                        seq,
                        FleetError::Shard(format!(
                            "shard {k} failed after {attempts} dispatch attempts"
                        )),
                    );
                    break;
                }
                let range = self.jobs[seq].shards[k].range.clone();
                if let Some(w) = self.pick_worker(seq, &range, now) {
                    self.dispatch(seq, k, w, now);
                }
            }
        }
    }

    fn dispatch_speculative(&mut self, now: Instant) {
        for seq in 0..self.jobs.len() {
            if self.jobs[seq].finished {
                continue;
            }
            for k in 0..self.jobs[seq].shards.len() {
                let s = &self.jobs[seq].shards[k];
                if s.rows.is_none()
                    && s.assigned.len() == 1
                    && now.duration_since(s.dispatched_at) > self.policy.speculative_after
                {
                    let holder = s.assigned[0];
                    let other = (0..self.workers.len())
                        .filter(|&i| i != holder && self.workers[i].alive)
                        .min_by_key(|&i| self.workers[i].inflight.len());
                    if let Some(w) = other {
                        kpm_obs::counter_add("fleet.speculative", 1);
                        self.dispatch(seq, k, w, now);
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, seq: usize, k: usize, w: usize, now: Instant) {
        {
            let s = &mut self.jobs[seq].shards[k];
            s.attempts += 1;
            s.assigned.push(w);
            s.dispatched_at = now;
        }
        self.workers[w].inflight.push((seq as u32, k as u32));
        kpm_obs::counter_add("fleet.dispatched", 1);
        // Spec travels once per (worker, job); every shard after that is an
        // O(1) reference.
        if !self.workers[w].announced.contains(&(seq as u32)) {
            let announce =
                Frame::SpecAnnounce { job: seq as u64, spec: self.jobs[seq].line.clone() };
            if self.workers[w].tx.send(&announce).is_err() {
                self.kill_worker(w, now);
                return;
            }
            self.workers[w].announced.insert(seq as u32);
        }
        let range = &self.jobs[seq].shards[k].range;
        let request = Frame::RequestRef {
            job: seq as u64,
            shard: k as u32,
            start: range.start as u64,
            end: range.end as u64,
        };
        if self.workers[w].tx.send(&request).is_err() {
            self.kill_worker(w, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_shard::transport::loopback_pair;
    use kpm_shard::worker::{serve_endpoint_with, WorkerFault};

    fn spawn_workers(n: usize) -> Vec<Endpoint> {
        (0..n)
            .map(|i| {
                let (coord, worker) = loopback_pair(&format!("fleet-local-{i}"));
                std::thread::Builder::new()
                    .name(format!("kpm-fleet-local-{i}"))
                    .spawn(move || serve_endpoint_with(worker, None))
                    .expect("spawn local worker");
                coord
            })
            .collect()
    }

    fn fast_policy() -> FleetPolicy {
        FleetPolicy {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_millis(600),
            backoff_base: Duration::from_millis(5),
            inventory_wait: Duration::from_millis(100),
            no_worker_grace: Duration::from_millis(1500),
            ..FleetPolicy::default()
        }
    }

    const LINE_A: &str = "dos lattice=chain:48 moments=16 random=3 sets=2 seed=11";
    const LINE_B: &str = "dos lattice=chain:32 moments=12 random=2 sets=2 seed=7";

    fn reference(line: &str) -> Vec<f64> {
        let job = ShardJob::parse(line).unwrap();
        let rows = job.compute_partial(0..job.total_units()).unwrap();
        job.merge(&rows).unwrap().into_stats().unwrap().mean
    }

    #[test]
    fn concurrent_jobs_merge_bitwise_identically() {
        let fleet = Fleet::start(spawn_workers(3), fast_policy(), None).unwrap();
        let client = fleet.client();
        let rx_a = client.submit_async(LINE_A).unwrap();
        let rx_b = client.submit_async(LINE_B).unwrap();
        let a = rx_a.recv().unwrap().unwrap().into_stats().unwrap();
        let b = rx_b.recv().unwrap().unwrap().into_stats().unwrap();
        assert_eq!(a.mean, reference(LINE_A));
        assert_eq!(b.mean, reference(LINE_B));
        let stats = fleet.shutdown().unwrap();
        assert_eq!(stats.jobs_completed, 2);
        assert_eq!(stats.jobs_failed, 0);
    }

    #[test]
    fn repeat_submission_prefills_from_the_journal_image() {
        let fleet = Fleet::start(spawn_workers(2), fast_policy(), None).unwrap();
        let client = fleet.client();
        let first = client.submit(LINE_A).unwrap().into_stats().unwrap();
        let again = client.submit(LINE_A).unwrap().into_stats().unwrap();
        assert_eq!(first.mean, again.mean);
        assert_eq!(first.mean, reference(LINE_A));
        let stats = fleet.shutdown().unwrap();
        // The duplicate was served whole from journaled rows.
        assert_eq!(stats.prefilled_shards, 4);
    }

    #[test]
    fn invalid_job_fails_without_poisoning_the_fleet() {
        let fleet = Fleet::start(spawn_workers(1), fast_policy(), None).unwrap();
        let client = fleet.client();
        assert!(matches!(client.submit("dos lattice=blob:9"), Err(FleetError::Job(_))));
        let ok = client.submit(LINE_B).unwrap().into_stats().unwrap();
        assert_eq!(ok.mean, reference(LINE_B));
        drop(fleet);
    }

    #[test]
    fn worker_join_mid_run_serves_jobs() {
        let fleet = Fleet::start(Vec::new(), fast_policy(), None).unwrap();
        let client = fleet.client();
        let rx = client.submit_async(LINE_B).unwrap();
        let mut eps = spawn_workers(1);
        fleet.join_worker(eps.remove(0)).unwrap();
        let stats = rx.recv().unwrap().unwrap().into_stats().unwrap();
        assert_eq!(stats.mean, reference(LINE_B));
        drop(fleet);
    }

    #[test]
    fn fleet_without_workers_fails_jobs_after_grace() {
        let policy = FleetPolicy { no_worker_grace: Duration::from_millis(200), ..fast_policy() };
        let fleet = Fleet::start(Vec::new(), policy, None).unwrap();
        match fleet.client().submit(LINE_B) {
            Err(FleetError::NoWorkers { pending }) => assert!(pending > 0),
            other => panic!("expected NoWorkers, got {other:?}"),
        }
        drop(fleet);
    }

    #[test]
    fn dying_worker_does_not_change_the_merged_bytes() {
        let mut endpoints = spawn_workers(2);
        let (coord, worker) = loopback_pair("fleet-dying");
        std::thread::spawn(move || {
            serve_endpoint_with(worker, Some(WorkerFault::DieAfterRequests(1)))
        });
        endpoints.push(coord);
        let fleet = Fleet::start(endpoints, fast_policy(), None).unwrap();
        let merged = fleet.client().submit(LINE_A).unwrap().into_stats().unwrap();
        assert_eq!(merged.mean, reference(LINE_A));
        drop(fleet);
    }

    #[test]
    fn kill_and_restart_resumes_from_the_journal_bitwise() {
        let dir = std::env::temp_dir().join(format!("kpm-fleet-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // First coordinator: crashes (by injection) after two journaled
        // results.
        let policy = FleetPolicy { kill_after_results: Some(2), ..fast_policy() };
        let fleet = Fleet::start(spawn_workers(2), policy, Some(&dir)).unwrap();
        let rx = fleet.client().submit_async(LINE_A).unwrap();
        assert!(rx.recv().is_err(), "the killed coordinator must not answer");
        drop(fleet);
        // Restarted coordinator: replays the journal, computes only what is
        // missing, and the merge is bitwise identical.
        let fleet = Fleet::start(spawn_workers(2), fast_policy(), Some(&dir)).unwrap();
        let merged = fleet.client().submit(LINE_A).unwrap().into_stats().unwrap();
        assert_eq!(merged.mean, reference(LINE_A));
        let stats = fleet.shutdown().unwrap();
        assert!(stats.replayed_rows > 0, "journal must have been replayed");
        assert!(stats.prefilled_shards > 0, "replayed rows must pre-fill shards");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn locality_routes_repeat_jobs_to_warm_workers() {
        // Two workers; the same spec three times with different seeds so
        // rows cannot be reused but the assembled operator can. With
        // locality on, warm-op placements must appear.
        let fleet = Fleet::start(spawn_workers(2), fast_policy(), None).unwrap();
        let client = fleet.client();
        for seed in 1..=3 {
            let line = format!("dos lattice=chain:40 moments=12 random=2 sets=2 seed={seed}");
            client.submit(&line).unwrap();
        }
        let stats = fleet.shutdown().unwrap();
        assert!(
            stats.place_warm_op + stats.place_warm_rows > 0,
            "repeat operators must route warm: {stats:?}"
        );
    }

    #[test]
    fn stats_json_renders_all_counters() {
        let json =
            FleetStats { jobs_completed: 2, steals: 1, ..FleetStats::default() }.render_json();
        assert!(json.contains("\"kind\":\"fleet-stats\""));
        assert!(json.contains("\"jobs_completed\":2"));
        assert!(json.contains("\"steals\":1"));
        assert!(json.contains("\"journal_bytes\":0"));
    }
}
