//! The restartable merge journal: per-realization rows on disk before ack.
//!
//! Every result row batch the scheduler accepts is appended to
//! `journal.log` as a length-prefixed `KPFJ` frame (the shared
//! [`kpm_wire`] codec, `f64` as raw bits) and fsync'd *before* the rows
//! count toward a job's merge. A coordinator that dies mid-run can
//! therefore be restarted on the same `--journal DIR`: [`Journal::open`]
//! replays the log into an idx-addressed row map, finished work is not
//! recomputed, and — because rows are merged in canonical `idx = s * R + r`
//! order either way — the resumed merge is bitwise identical to an
//! uninterrupted one.
//!
//! Frames are keyed by the job's **content hash** (not its run-local
//! sequence id), so replay is stable across restarts that submit jobs in a
//! different order, and duplicate submissions of the same spec share one
//! journal key. A torn final frame (the crash happened mid-append) is
//! tolerated: replay stops at the last whole frame, exactly the rows that
//! were never acknowledged.

use crate::error::FleetError;
use kpm_wire::{put_f64s, put_str, put_u32, put_u64, Codec, Reader};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Write as _};
use std::path::Path;

/// Journal codec: own magic, version 1.
const CODEC: Codec = Codec { magic: *b"KPFJ", version: 1 };

/// Frame: a job's identity — content hash plus canonical shard-job line.
const TYPE_JOB: u8 = 1;
/// Frame: one accepted shard's per-realization rows.
const TYPE_ROWS: u8 = 2;

/// The replayed image of a journal: everything acknowledged before the
/// previous coordinator stopped.
#[derive(Debug, Default)]
pub struct Replayed {
    /// Job content hash → canonical shard-job line.
    pub jobs: HashMap<u64, String>,
    /// Job content hash → realization idx → moment row.
    pub rows: HashMap<u64, HashMap<u64, Vec<f64>>>,
}

impl Replayed {
    /// Total replayed rows across all jobs.
    pub fn row_count(&self) -> u64 {
        self.rows.values().map(|m| m.len() as u64).sum()
    }
}

/// Append-only, fsync'd journal writer.
pub struct Journal {
    file: File,
    bytes: u64,
}

impl Journal {
    /// Opens (creating if needed) `dir/journal.log`, replaying any frames a
    /// previous coordinator left behind. Appends land after the replayed
    /// tail, so a journal survives any number of restarts.
    ///
    /// # Errors
    /// [`FleetError::Journal`] on directory or file I/O failure.
    pub fn open(dir: &Path) -> Result<(Journal, Replayed), FleetError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| FleetError::Journal(format!("create {}: {e}", dir.display())))?;
        let path = dir.join("journal.log");
        let replayed = match File::open(&path) {
            Ok(f) => replay(BufReader::new(f)),
            Err(_) => Replayed::default(), // fresh journal
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| FleetError::Journal(format!("open {}: {e}", path.display())))?;
        kpm_obs::counter_add("fleet.journal.replayed_rows", replayed.row_count());
        Ok((Journal { file, bytes: 0 }, replayed))
    }

    /// Records a job's identity (idempotent across restarts: replay keeps
    /// the last line seen for a hash, and equal hashes mean equal lines).
    ///
    /// # Errors
    /// [`FleetError::Journal`] when the append or fsync fails.
    pub fn record_job(&mut self, hash: u64, line: &str) -> Result<(), FleetError> {
        let mut payload = Vec::with_capacity(8 + 4 + line.len());
        put_u64(&mut payload, hash);
        put_str(&mut payload, line);
        self.append(TYPE_JOB, payload)
    }

    /// Records one accepted shard: rows for realizations
    /// `start..start + rows.len()` of the job `hash`. Durable (fsync) on
    /// return — only then may the scheduler count the shard as done.
    ///
    /// # Errors
    /// [`FleetError::Journal`] when the append or fsync fails.
    pub fn record_rows(
        &mut self,
        hash: u64,
        start: u64,
        rows: &[Vec<f64>],
    ) -> Result<(), FleetError> {
        let per_row = 4 + rows.first().map_or(0, |r| r.len() * 8);
        let mut payload = Vec::with_capacity(8 + 8 + 4 + rows.len() * per_row);
        put_u64(&mut payload, hash);
        put_u64(&mut payload, start);
        put_u32(&mut payload, rows.len() as u32);
        for row in rows {
            put_f64s(&mut payload, row);
        }
        self.append(TYPE_ROWS, payload)
    }

    /// Bytes appended by this writer (not counting a replayed prefix).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn append(&mut self, ty: u8, payload: Vec<u8>) -> Result<(), FleetError> {
        let frame = CODEC.frame(ty, payload);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| FleetError::Journal(format!("append: {e}")))?;
        self.bytes += frame.len() as u64;
        kpm_obs::counter_add("fleet.journal.bytes", frame.len() as u64);
        Ok(())
    }
}

/// Replays every whole frame; stops silently at the first torn or foreign
/// byte (the tail a crash may leave). Later rows for the same `(hash, idx)`
/// overwrite earlier ones — they are bitwise identical by construction, so
/// the choice is immaterial.
fn replay(mut reader: BufReader<File>) -> Replayed {
    let mut out = Replayed::default();
    while let Ok((ty, payload)) = CODEC.read_frame(&mut reader) {
        let mut r = Reader::new(&payload);
        let parsed = (|| -> Result<(), kpm_wire::WireError> {
            match ty {
                TYPE_JOB => {
                    let hash = r.u64()?;
                    let line = r.string()?;
                    r.finish()?;
                    out.jobs.insert(hash, line);
                }
                TYPE_ROWS => {
                    let hash = r.u64()?;
                    let start = r.u64()?;
                    let count = r.u32()?;
                    let per_job = out.rows.entry(hash).or_default();
                    for i in 0..count as u64 {
                        per_job.insert(start + i, r.f64s()?);
                    }
                    r.finish()?;
                }
                _ => {} // unknown frame type from a newer writer: skip
            }
            Ok(())
        })();
        if parsed.is_err() {
            break; // torn payload: everything after it was never acked
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kpm-fleet-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_roundtrips_jobs_and_rows_bitwise() {
        let dir = tmp_dir("roundtrip");
        let rows = vec![vec![1.0f64, -0.25, 3e-17], vec![0.5, f64::MIN_POSITIVE, -0.0]];
        {
            let (mut j, replayed) = Journal::open(&dir).unwrap();
            assert!(replayed.jobs.is_empty());
            j.record_job(42, "dos lattice=chain:8 moments=4").unwrap();
            j.record_rows(42, 3, &rows).unwrap();
            assert!(j.bytes_written() > 0);
        }
        let (_, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.jobs[&42], "dos lattice=chain:8 moments=4");
        let got = &replayed.rows[&42];
        assert_eq!(got.len(), 2);
        // Bitwise: raw f64 bits survive the disk roundtrip.
        assert_eq!(got[&3], rows[0]);
        assert_eq!(got[&4], rows[1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Version tolerance across restarts: journals written before the
    /// bounds provider existed carry bounds-free lines, which replay to
    /// jobs with the Gershgorin default; bounds-bearing lines replay to
    /// the same provider they were journaled with.
    #[test]
    fn journaled_spec_lines_replay_bounds_version_tolerantly() {
        let dir = tmp_dir("bounds");
        let legacy = "dos lattice=chain:8 moments=4";
        let bounded = "dos lattice=chain:8 disorder=3@1 moments=4 bounds=lanczos:48";
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.record_job(1, legacy).unwrap();
            j.record_job(2, bounded).unwrap();
        }
        let (_, replayed) = Journal::open(&dir).unwrap();
        let old = kpm_shard::ShardJob::parse(&replayed.jobs[&1]).unwrap();
        assert_eq!(old.spec().bounds, kpm::BoundsMethod::Gershgorin);
        // The default provider never renders, so pre-bounds canonical
        // lines (and the hashes derived from them) are byte-stable.
        assert!(!old.canonical().contains("bounds="), "{}", old.canonical());
        let new = kpm_shard::ShardJob::parse(&replayed.jobs[&2]).unwrap();
        assert_eq!(new.spec().bounds, kpm::BoundsMethod::Lanczos { steps: 48 });
        assert!(new.canonical().contains("bounds=lanczos:48"), "{}", new.canonical());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_accumulate_across_reopens() {
        let dir = tmp_dir("reopen");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.record_rows(7, 0, &[vec![1.0]]).unwrap();
        }
        {
            let (mut j, replayed) = Journal::open(&dir).unwrap();
            assert_eq!(replayed.row_count(), 1);
            j.record_rows(7, 1, &[vec![2.0]]).unwrap();
        }
        let (_, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.row_count(), 2);
        assert_eq!(replayed.rows[&7][&1], vec![2.0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_whole_frames_survive() {
        let dir = tmp_dir("torn");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.record_rows(1, 0, &[vec![1.0, 2.0]]).unwrap();
            j.record_rows(1, 1, &[vec![3.0, 4.0]]).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let path = dir.join("journal.log");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (_, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.row_count(), 1);
        assert_eq!(replayed.rows[&1][&0], vec![1.0, 2.0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
