//! Error taxonomy of the fleet layer.
//!
//! Per-worker failures stay recoverable exactly as in the shard layer —
//! the scheduler reroutes lost shards. A [`FleetError`] surfaces per *job*
//! (one submission fails without taking the fleet down) or per *fleet*
//! (journal I/O, a stopped scheduler).

use kpm_shard::ShardError;
use std::fmt;

/// Why a fleet job (or the fleet itself) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// Journal directory or file I/O failed.
    Journal(String),
    /// The submitted job line is invalid or unshardable.
    Job(String),
    /// A shard-layer failure terminal for one job (deterministic worker
    /// error, attempts exhausted, malformed rows).
    Shard(String),
    /// No live worker remained long enough to finish the job.
    NoWorkers {
        /// Shards still unfinished when the job was abandoned.
        pending: usize,
    },
    /// The scheduler thread is gone (shut down, killed, or crashed); the
    /// submission can never complete.
    Stopped,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Journal(msg) => write!(f, "journal: {msg}"),
            FleetError::Job(msg) => write!(f, "job: {msg}"),
            FleetError::Shard(msg) => write!(f, "shard: {msg}"),
            FleetError::NoWorkers { pending } => {
                write!(f, "no live workers with {pending} shards pending")
            }
            FleetError::Stopped => write!(f, "fleet scheduler stopped"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Journal(e.to_string())
    }
}

impl From<ShardError> for FleetError {
    fn from(e: ShardError) -> Self {
        match e {
            ShardError::Job(msg) => FleetError::Job(msg),
            ShardError::AllWorkersDead { pending } => FleetError::NoWorkers { pending },
            other => FleetError::Shard(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions_carry_context() {
        assert!(FleetError::Journal("disk full".into()).to_string().contains("disk full"));
        let from_shard: FleetError = ShardError::AllWorkersDead { pending: 3 }.into();
        assert_eq!(from_shard, FleetError::NoWorkers { pending: 3 });
        let from_job: FleetError = ShardError::Job("bad".into()).into();
        assert_eq!(from_job, FleetError::Job("bad".into()));
        let from_io: FleetError = std::io::Error::other("nope").into();
        assert!(matches!(from_io, FleetError::Journal(_)));
    }
}
