//! Property tests for the fleet guarantee: for *any* interleaving of
//! worker joins, leaves (death or hang), cross-job stealing, and one
//! coordinator kill-and-replay, every job's merged moments are bitwise
//! identical to a single-process run with the same seed.
//!
//! Runs go through the full public stack — loopback or real TCP endpoints
//! carrying wire frames, the locality-aware scheduler, the fsync'd
//! journal, the exact merge — extending the shard layer's fault harness
//! (crates/shard/tests/proptests.rs) across jobs and coordinator
//! restarts.

use kpm_fleet::{Fleet, FleetError, FleetPolicy};
use kpm_shard::transport::{loopback_pair, Endpoint};
use kpm_shard::worker::{serve_endpoint_with, serve_listener_with};
use kpm_shard::{MergedMoments, ShardJob, WorkerFault};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Quick heartbeats so fault paths resolve in test time.
fn fast_policy() -> FleetPolicy {
    FleetPolicy {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(600),
        backoff_base: Duration::from_millis(5),
        inventory_wait: Duration::from_millis(100),
        no_worker_grace: Duration::from_secs(3),
        ..FleetPolicy::default()
    }
}

/// Spawns one worker endpoint: loopback in-process, or a real TCP
/// listener serving one connection — the same codec either way, so the
/// TCP arm pins the network framing under the identical interleavings.
fn spawn_worker(i: usize, fault: Option<WorkerFault>, tcp: bool) -> Endpoint {
    if tcp {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            // `once` mode: serve this fleet's connection, then exit. Fault
            // injection lives in the loopback arm; TCP pins the codec.
            let _ = serve_listener_with(&listener, true, kpm_shard::inventory::DEFAULT_ROW_CAP);
        });
        Endpoint::connect_tcp(&addr).expect("connect")
    } else {
        let (coord, worker) = loopback_pair(&format!("fleet-prop-{i}"));
        std::thread::spawn(move || serve_endpoint_with(worker, fault));
        coord
    }
}

/// The single-process reference: full realization range computed and
/// merged in-process (itself pinned bitwise to the estimator pipelines by
/// `kpm_shard::job`'s unit tests).
fn reference(line: &str) -> MergedMoments {
    let job = ShardJob::parse(line).expect("parse");
    let rows = job.compute_partial(0..job.total_units()).expect("reference rows");
    job.merge(&rows).expect("reference merge")
}

fn assert_bitwise(got: &MergedMoments, want: &MergedMoments, what: &str) {
    match (got, want) {
        (MergedMoments::Stats(a), MergedMoments::Stats(b)) => {
            assert_eq!(a.mean, b.mean, "{what}: mean must be bitwise identical");
            assert_eq!(a.std_err, b.std_err, "{what}: std_err must be bitwise identical");
        }
        (MergedMoments::Double(a), MergedMoments::Double(b)) => {
            assert_eq!(a.mu, b.mu, "{what}: mu_nm must be bitwise identical");
        }
        _ => panic!("{what}: merged moment kinds disagree"),
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_journal_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kpm-fleet-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The satellite property: random jobs (with duplicates, so warm-row
    /// routing and stealing engage), a random fault on one worker, a
    /// mid-run join, one coordinator kill mid-merge, and a journal replay
    /// — every job bitwise equal to single-process, over loopback and TCP.
    #[test]
    fn joins_leaves_steals_and_one_kill_replay_stay_bitwise(
        sites in 24usize..48,
        moments in 8usize..20,
        seeds in proptest::collection::vec(0u64..100, 2..4),
        fault_kind in 0u8..3,
        kill_after in 1usize..6,
        tcp in any::<bool>(),
    ) {
        let lines: Vec<String> = seeds
            .iter()
            .map(|s| format!("dos lattice=chain:{sites} moments={moments} random=2 sets=2 seed={s}"))
            .collect();
        // Duplicate the first spec so the second submission exercises
        // journal prefill and warm-row placement.
        let mut lines = lines;
        lines.push(lines[0].clone());
        let refs: Vec<MergedMoments> = lines.iter().map(|l| reference(l)).collect();
        let fault = match fault_kind {
            0 => None,
            1 => Some(WorkerFault::DieAfterRequests(1)),
            _ => Some(WorkerFault::HangAfterRequests(1)),
        };
        let dir = fresh_journal_dir();

        // Phase 1: a coordinator that crashes (kill injection) after
        // `kill_after` journaled results, workers carrying the fault.
        {
            let endpoints = vec![
                spawn_worker(0, fault, tcp),
                spawn_worker(1, None, tcp),
            ];
            let policy = FleetPolicy { kill_after_results: Some(kill_after), ..fast_policy() };
            let fleet = Fleet::start(endpoints, policy, Some(&dir)).expect("fleet 1");
            let client = fleet.client();
            let rxs: Vec<_> =
                lines.iter().map(|l| client.submit_async(l).expect("submit")).collect();
            // Whatever finished before the kill must already be bitwise
            // right; the rest died with the coordinator.
            for (rx, want) in rxs.iter().zip(&refs) {
                match rx.recv() {
                    Ok(Ok(merged)) => assert_bitwise(&merged, want, "pre-kill job"),
                    Ok(Err(e)) => panic!("phase-1 job failed: {e}"),
                    Err(_) => {} // killed mid-flight — resumed below
                }
            }
            drop(fleet);
        }

        // Phase 2: a restarted coordinator on the same journal, a single
        // fresh worker at start, one more joining mid-run (the join/leave
        // interleaving), resubmitting every job.
        {
            let fleet = Fleet::start(
                vec![spawn_worker(2, None, tcp)],
                fast_policy(),
                Some(&dir),
            ).expect("fleet 2");
            let client = fleet.client();
            let rxs: Vec<_> =
                lines.iter().map(|l| client.submit_async(l).expect("resubmit")).collect();
            fleet.join_worker(spawn_worker(3, None, tcp)).expect("join");
            for (rx, want) in rxs.iter().zip(&refs) {
                let merged = rx.recv().expect("scheduler alive").expect("job succeeds");
                assert_bitwise(&merged, want, "post-replay job");
            }
            let stats = fleet.shutdown().expect("stats");
            prop_assert!(
                stats.replayed_rows > 0,
                "kill after {kill_after} results must leave journal rows; stats {stats:?}"
            );
            prop_assert!(stats.workers_joined >= 2);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A workerless fleet fails jobs with `NoWorkers` after the grace period
/// instead of hanging — the terminal leave case the property above never
/// reaches (its workers revive).
#[test]
fn all_workers_leaving_fails_pending_jobs() {
    let policy = FleetPolicy { no_worker_grace: Duration::from_millis(300), ..fast_policy() };
    let fleet = Fleet::start(
        vec![spawn_worker(0, Some(WorkerFault::DieAfterRequests(0)), false)],
        policy,
        None,
    )
    .expect("fleet");
    match fleet.client().submit("dos lattice=chain:32 moments=12 random=2 sets=2 seed=5") {
        Err(FleetError::NoWorkers { .. }) => {}
        other => panic!("expected NoWorkers, got {other:?}"),
    }
    drop(fleet);
}

/// Kubo jobs (matrix-valued rows, exact-order reuse only) survive the
/// kill-and-replay path bitwise too.
#[test]
fn kubo_kill_and_replay_is_bitwise() {
    let line = "kubo lattice=chain:24 moments=8 random=2 sets=2 seed=13";
    let want = reference(line);
    let dir = fresh_journal_dir();
    {
        let policy = FleetPolicy { kill_after_results: Some(1), ..fast_policy() };
        let fleet =
            Fleet::start(vec![spawn_worker(0, None, false)], policy, Some(&dir)).expect("fleet");
        let rx = fleet.client().submit_async(line).expect("submit");
        assert!(rx.recv().is_err(), "killed coordinator must not answer");
        drop(fleet);
    }
    let fleet = Fleet::start(
        vec![spawn_worker(1, None, false), spawn_worker(2, None, false)],
        fast_policy(),
        Some(&dir),
    )
    .expect("fleet 2");
    let merged = fleet.client().submit(line).expect("job succeeds");
    assert_bitwise(&merged, &want, "kubo replay");
    let stats = fleet.shutdown().expect("stats");
    assert!(stats.replayed_rows > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
