//! The [`BlockOp`] abstraction: applying an operator to a `D x K`
//! column-block in one sweep.
//!
//! Stochastic trace estimation is a multiple-right-hand-side problem: every
//! moment step applies the same Hamiltonian to all `R` random vectors of a
//! realization. Doing that one vector at a time re-streams the matrix `R`
//! times; doing it as a blocked SpMM streams the matrix once and amortizes
//! each row's indices and values over the whole block. [`BlockOp`] is the
//! trait the KPM recursion consumes; every [`LinearOp`] gets a column-loop
//! fallback for free, and storage formats with a true SpMM kernel override
//! it.
//!
//! # Layout
//!
//! A block is a flat `&[f64]` of length `dim * k` holding `k` columns back
//! to back: column `j` is `x[j * dim..(j + 1) * dim]`. Column-major blocks
//! keep each vector contiguous, so `k = 1` degenerates to exactly the
//! one-vector layout and all the BLAS-1 kernels in [`crate::vecops`] apply
//! per column unchanged.
//!
//! # Determinism contract
//!
//! For every implementation, column `j` of `apply_block` must be bitwise
//! identical to `apply` on that column alone. The KPM test-suite's
//! bitwise-equivalence guarantees (CPU vs simulated GPU, cached vs direct,
//! blocked vs scalar) all rest on this.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::op::{DiagonalOp, IdentityOp, LinearOp, RescaledOp};
use crate::vecops;

/// Store transform shared by every rescaled kernel: maps the raw
/// accumulator for element `(i, j)` of a `dim x k` column-major block to
/// `(acc - a_plus * x[j * dim + i]) * inv_a_minus`.
///
/// CSR, ELL and stencil all fuse the spectral shift-and-scale into their
/// store step with this exact expression; the tiled engine reuses it for
/// [`crate::tiled::TiledOp`] streaming on [`RescaledOp`]. Centralizing it
/// pins the operation order (`sub` then `mul`) that the bitwise
/// scalar-vs-blocked contracts depend on.
#[inline]
pub fn rescaled_store(
    x: &[f64],
    dim: usize,
    a_plus: f64,
    inv_a_minus: f64,
) -> impl Fn(f64, usize, usize) -> f64 + '_ {
    move |acc, i, j| (acc - a_plus * x[j * dim + i]) * inv_a_minus
}

/// A square operator applicable to a `dim x k` column-block: `Y = A X`.
///
/// The provided default loops [`LinearOp::apply`] over the columns, so any
/// `LinearOp` can opt in with an empty `impl BlockOp for T {}`. Formats with
/// a genuine SpMM kernel (CSR, ELL, stencil) override [`BlockOp::apply_block`]
/// to stream the matrix once per sweep.
pub trait BlockOp: LinearOp {
    /// Computes `Y = A X` where `x` and `y` each hold `k` columns of length
    /// `self.dim()` back to back.
    ///
    /// Column `j` of the result must be bitwise identical to
    /// [`LinearOp::apply`] on `x[j * dim..(j + 1) * dim]`.
    ///
    /// # Panics
    /// Panics if `x.len()` or `y.len()` differs from `self.dim() * k`.
    fn apply_block(&self, x: &[f64], y: &mut [f64], k: usize) {
        let d = self.dim();
        assert_eq!(x.len(), d * k, "apply_block: x length");
        assert_eq!(y.len(), d * k, "apply_block: y length");
        if d == 0 {
            return;
        }
        for (xc, yc) in x.chunks_exact(d).zip(y.chunks_exact_mut(d)) {
            self.apply(xc, yc);
        }
    }

    /// Computes `Y = (A X - a_plus * X) * inv_a_minus` — the blocked form of
    /// [`LinearOp::apply_rescaled`].
    ///
    /// The default runs [`BlockOp::apply_block`] followed by the
    /// element-wise pass; format kernels override it to transform at store
    /// time, saving a full read-modify-write sweep over the `D x K` block
    /// per recursion step. Every implementation must compute exactly
    /// `(raw_i - a_plus * x_i) * inv_a_minus` per element, keeping each
    /// column bitwise identical to the one-vector path.
    ///
    /// # Panics
    /// Same contract as [`BlockOp::apply_block`].
    fn apply_block_rescaled(
        &self,
        x: &[f64],
        y: &mut [f64],
        k: usize,
        a_plus: f64,
        inv_a_minus: f64,
    ) {
        self.apply_block(x, y, k);
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = (*yi - a_plus * xi) * inv_a_minus;
        }
    }

    /// Convenience: allocate and return `A X`.
    fn apply_block_alloc(&self, x: &[f64], k: usize) -> Vec<f64> {
        let mut y = vec![0.0; self.dim() * k];
        self.apply_block(x, &mut y, k);
        y
    }
}

impl<A: BlockOp + ?Sized> BlockOp for &A {
    fn apply_block(&self, x: &[f64], y: &mut [f64], k: usize) {
        (**self).apply_block(x, y, k)
    }

    fn apply_block_rescaled(
        &self,
        x: &[f64],
        y: &mut [f64],
        k: usize,
        a_plus: f64,
        inv_a_minus: f64,
    ) {
        (**self).apply_block_rescaled(x, y, k, a_plus, inv_a_minus)
    }
}

impl BlockOp for IdentityOp {}

impl BlockOp for DiagonalOp {}

impl BlockOp for CsrMatrix {
    fn apply_block(&self, x: &[f64], y: &mut [f64], k: usize) {
        self.spmm(x, y, k);
    }

    fn apply_block_rescaled(
        &self,
        x: &[f64],
        y: &mut [f64],
        k: usize,
        a_plus: f64,
        inv_a_minus: f64,
    ) {
        self.spmm_rescaled(x, y, k, a_plus, inv_a_minus);
    }
}

impl BlockOp for DenseMatrix {
    fn apply_block(&self, x: &[f64], y: &mut [f64], k: usize) {
        let d = self.dim();
        assert_eq!(x.len(), d * k, "apply_block: x length");
        assert_eq!(y.len(), d * k, "apply_block: y length");
        // Rows outer, columns inner: each row is loaded once and dotted with
        // every column while hot. Per column this is the same
        // `vecops::dot(row, xcol)` as `matvec`, so results are bitwise equal.
        for i in 0..d {
            let row = self.row(i);
            for j in 0..k {
                y[j * d + i] = vecops::dot(row, &x[j * d..(j + 1) * d]);
            }
        }
    }
}

impl<A: BlockOp> BlockOp for RescaledOp<A> {
    fn apply_block(&self, x: &[f64], y: &mut [f64], k: usize) {
        // Same `(y - a_plus x) / a_minus` element sequence as the scalar
        // `apply`; formats fuse it into their kernel's store step, the
        // default runs it as a separate pass — bitwise identical either way.
        self.inner().apply_block_rescaled(x, y, k, self.a_plus(), 1.0 / self.a_minus());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_raw(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0])
            .unwrap()
    }

    fn block_matches_column_loop<A: BlockOp>(op: &A, k: usize) {
        let d = op.dim();
        let x: Vec<f64> = (0..d * k).map(|i| (i as f64).sin() + 0.25).collect();
        let blocked = op.apply_block_alloc(&x, k);
        for j in 0..k {
            let col = op.apply_alloc(&x[j * d..(j + 1) * d]);
            assert_eq!(&blocked[j * d..(j + 1) * d], &col[..], "column {j}");
        }
    }

    #[test]
    fn default_column_loop_matches_apply() {
        block_matches_column_loop(&IdentityOp::new(5), 3);
        block_matches_column_loop(&DiagonalOp::new(vec![2.0, -1.0, 0.5, 7.0]), 4);
    }

    #[test]
    fn csr_spmm_matches_spmv_per_column() {
        block_matches_column_loop(&sample_csr(), 1);
        block_matches_column_loop(&sample_csr(), 4);
    }

    #[test]
    fn dense_block_matches_matvec_per_column() {
        let m = DenseMatrix::from_fn(6, 6, |i, j| ((3 * i + j) as f64).cos());
        block_matches_column_loop(&m, 1);
        block_matches_column_loop(&m, 5);
    }

    #[test]
    fn rescaled_forwards_blocks_bitwise() {
        let r = RescaledOp::new(sample_csr(), 0.7, 2.3);
        block_matches_column_loop(&r, 3);
    }

    #[test]
    fn reference_forwarding_works() {
        let m = sample_csr();
        block_matches_column_loop(&&m, 2);
    }

    #[test]
    fn zero_width_block_is_a_noop() {
        let m = sample_csr();
        let y = m.apply_block_alloc(&[], 0);
        assert!(y.is_empty());
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn length_mismatch_panics() {
        let m = sample_csr();
        let mut y = vec![0.0; 6];
        m.apply_block(&[0.0; 5], &mut y, 2);
    }
}
