//! Format-polymorphic sparse Hamiltonian storage.
//!
//! [`SparseMatrix`] makes the storage format a first-class runtime choice:
//! the same pipeline can run over CSR (the paper's CRS format), padded ELL,
//! or the matrix-free stencil, and all three produce bitwise-identical
//! results (each format preserves the per-row ascending-column accumulation
//! order). [`MatrixFormat`] is the user-facing selector shared by the CLI's
//! `--format` flag, the lattice builders, and the serve job specs.

use crate::block::BlockOp;
use crate::csr::CsrMatrix;
use crate::ell::EllMatrix;
use crate::gershgorin::{gershgorin_csr, gershgorin_ell, SpectralBounds};
use crate::op::LinearOp;
use crate::stencil::StencilOp;

/// User-facing storage-format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixFormat {
    /// Compressed Sparse Row — the baseline, always available.
    #[default]
    Csr,
    /// Padded slot-major ELLPACK.
    Ell,
    /// Matrix-free lattice stencil (falls back to CSR when the model has
    /// terms the stencil cannot express, e.g. next-nearest hopping).
    Stencil,
    /// Pick CSR or ELL automatically from the row-length regularity.
    Auto,
}

impl MatrixFormat {
    /// Canonical lower-case name (also the CLI token).
    pub fn as_str(&self) -> &'static str {
        match self {
            MatrixFormat::Csr => "csr",
            MatrixFormat::Ell => "ell",
            MatrixFormat::Stencil => "stencil",
            MatrixFormat::Auto => "auto",
        }
    }
}

impl std::fmt::Display for MatrixFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for MatrixFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "csr" => Ok(MatrixFormat::Csr),
            "ell" => Ok(MatrixFormat::Ell),
            "stencil" => Ok(MatrixFormat::Stencil),
            "auto" => Ok(MatrixFormat::Auto),
            other => Err(format!("unknown matrix format '{other}' (csr|ell|stencil|auto)")),
        }
    }
}

/// A square sparse operator in one of the selectable storage formats.
///
/// All variants implement the same [`LinearOp`]/[`BlockOp`] contract with
/// bitwise-identical results; they differ only in memory layout and traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseMatrix {
    /// Compressed Sparse Row storage.
    Csr(CsrMatrix),
    /// Padded slot-major ELLPACK storage.
    Ell(EllMatrix),
    /// Matrix-free stencil (no index arrays at all).
    Stencil(StencilOp),
}

impl SparseMatrix {
    /// Converts a CSR matrix into the requested format.
    ///
    /// [`MatrixFormat::Stencil`] cannot be recovered from bare CSR storage
    /// (it needs the generating geometry), so it falls back to CSR here;
    /// geometry-aware builders in the lattice crate construct
    /// [`SparseMatrix::Stencil`] directly.
    pub fn from_csr(csr: CsrMatrix, format: MatrixFormat) -> Self {
        match format {
            MatrixFormat::Csr | MatrixFormat::Stencil => SparseMatrix::Csr(csr),
            MatrixFormat::Ell => SparseMatrix::Ell(EllMatrix::from_csr(&csr)),
            MatrixFormat::Auto => SparseMatrix::auto(csr),
        }
    }

    /// Automatic CSR-vs-ELL selection by row regularity: picks ELL when the
    /// padding overhead `width * nrows - nnz` is at most a quarter of the
    /// true `nnz` (regular lattice Hamiltonians qualify; ragged matrices
    /// stay CSR so padding cannot blow up memory).
    pub fn auto(csr: CsrMatrix) -> Self {
        let padded = csr.max_row_nnz() * csr.nrows();
        let overhead = padded - csr.nnz();
        if overhead <= csr.nnz() / 4 {
            SparseMatrix::Ell(EllMatrix::from_csr(&csr))
        } else {
            SparseMatrix::Csr(csr)
        }
    }

    /// The stored format's canonical name.
    pub fn format_name(&self) -> &'static str {
        match self {
            SparseMatrix::Csr(_) => "csr",
            SparseMatrix::Ell(_) => "ell",
            SparseMatrix::Stencil(_) => "stencil",
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        match self {
            SparseMatrix::Csr(m) => m.nrows(),
            SparseMatrix::Ell(m) => m.nrows(),
            SparseMatrix::Stencil(s) => s.dim(),
        }
    }

    /// Number of columns (all variants are square).
    pub fn ncols(&self) -> usize {
        match self {
            SparseMatrix::Csr(m) => m.ncols(),
            SparseMatrix::Ell(m) => m.ncols(),
            SparseMatrix::Stencil(s) => s.dim(),
        }
    }

    /// True number of stored entries (explicit zeros count, padding does
    /// not).
    pub fn nnz(&self) -> usize {
        self.stored_entries()
    }

    /// Materializes as CSR (cloning for the CSR variant) — used by
    /// consumers that require concrete CSR storage, e.g. the stream engine
    /// and the Chebyshev propagator.
    pub fn to_csr(&self) -> CsrMatrix {
        match self {
            SparseMatrix::Csr(m) => m.clone(),
            SparseMatrix::Ell(m) => m.to_csr(),
            SparseMatrix::Stencil(s) => s.to_csr(),
        }
    }

    /// Gershgorin spectral bounds — bitwise identical across formats for
    /// the same operator.
    ///
    /// # Panics
    /// Panics if the matrix is not square or is empty.
    pub fn gershgorin_bounds(&self) -> SpectralBounds {
        match self {
            SparseMatrix::Csr(m) => gershgorin_csr(m),
            SparseMatrix::Ell(m) => gershgorin_ell(m),
            SparseMatrix::Stencil(s) => s.gershgorin_bounds(),
        }
    }
}

impl LinearOp for SparseMatrix {
    fn dim(&self) -> usize {
        match self {
            SparseMatrix::Csr(m) => m.dim(),
            SparseMatrix::Ell(m) => m.dim(),
            SparseMatrix::Stencil(s) => s.dim(),
        }
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        match self {
            SparseMatrix::Csr(m) => m.apply(x, y),
            SparseMatrix::Ell(m) => m.apply(x, y),
            SparseMatrix::Stencil(s) => s.apply(x, y),
        }
    }

    fn apply_rescaled(&self, x: &[f64], y: &mut [f64], a_plus: f64, inv_a_minus: f64) {
        match self {
            SparseMatrix::Csr(m) => m.apply_rescaled(x, y, a_plus, inv_a_minus),
            SparseMatrix::Ell(m) => m.apply_rescaled(x, y, a_plus, inv_a_minus),
            SparseMatrix::Stencil(s) => s.apply_rescaled(x, y, a_plus, inv_a_minus),
        }
    }

    fn stored_entries(&self) -> usize {
        match self {
            SparseMatrix::Csr(m) => m.stored_entries(),
            SparseMatrix::Ell(m) => m.stored_entries(),
            SparseMatrix::Stencil(s) => s.stored_entries(),
        }
    }

    fn model_entries(&self) -> usize {
        match self {
            SparseMatrix::Csr(m) => m.model_entries(),
            SparseMatrix::Ell(m) => m.model_entries(),
            SparseMatrix::Stencil(s) => s.model_entries(),
        }
    }
}

impl BlockOp for SparseMatrix {
    fn apply_block(&self, x: &[f64], y: &mut [f64], k: usize) {
        match self {
            SparseMatrix::Csr(m) => m.apply_block(x, y, k),
            SparseMatrix::Ell(m) => m.apply_block(x, y, k),
            SparseMatrix::Stencil(s) => s.apply_block(x, y, k),
        }
    }

    fn apply_block_rescaled(
        &self,
        x: &[f64],
        y: &mut [f64],
        k: usize,
        a_plus: f64,
        inv_a_minus: f64,
    ) {
        match self {
            SparseMatrix::Csr(m) => m.apply_block_rescaled(x, y, k, a_plus, inv_a_minus),
            SparseMatrix::Ell(m) => m.apply_block_rescaled(x, y, k, a_plus, inv_a_minus),
            SparseMatrix::Stencil(s) => s.apply_block_rescaled(x, y, k, a_plus, inv_a_minus),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// A periodic ring of 6 sites: perfectly regular rows (2 entries each).
    fn ring() -> CsrMatrix {
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, (i + 1) % 6, -1.0).unwrap();
            coo.push(i, (i + 5) % 6, -1.0).unwrap();
        }
        coo.to_csr()
    }

    /// An arrow matrix: one dense row makes padding catastrophic.
    fn arrow() -> CsrMatrix {
        let mut coo = CooMatrix::new(8, 8);
        for j in 1..8 {
            coo.push(0, j, 1.0).unwrap();
        }
        for i in 1..8 {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn auto_picks_ell_for_regular_rows() {
        let m = SparseMatrix::auto(ring());
        assert_eq!(m.format_name(), "ell");
    }

    #[test]
    fn auto_keeps_csr_for_ragged_rows() {
        let m = SparseMatrix::auto(arrow());
        assert_eq!(m.format_name(), "csr");
    }

    #[test]
    fn from_csr_honors_explicit_formats() {
        assert_eq!(SparseMatrix::from_csr(ring(), MatrixFormat::Csr).format_name(), "csr");
        assert_eq!(SparseMatrix::from_csr(ring(), MatrixFormat::Ell).format_name(), "ell");
        // Stencil cannot be derived from bare CSR: documented CSR fallback.
        assert_eq!(SparseMatrix::from_csr(ring(), MatrixFormat::Stencil).format_name(), "csr");
    }

    #[test]
    fn formats_apply_identically_and_roundtrip() {
        let csr = ring();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let reference = csr.apply_alloc(&x);
        for format in [MatrixFormat::Csr, MatrixFormat::Ell, MatrixFormat::Auto] {
            let m = SparseMatrix::from_csr(csr.clone(), format);
            assert_eq!(m.apply_alloc(&x), reference, "{format}");
            assert_eq!(m.to_csr(), csr, "{format}");
            assert_eq!(m.nnz(), csr.nnz(), "{format}");
            assert_eq!(m.gershgorin_bounds(), gershgorin_csr(&csr), "{format}");
        }
    }

    #[test]
    fn format_parsing_roundtrips() {
        for format in
            [MatrixFormat::Csr, MatrixFormat::Ell, MatrixFormat::Stencil, MatrixFormat::Auto]
        {
            assert_eq!(format.as_str().parse::<MatrixFormat>().unwrap(), format);
        }
        assert!("frobnicated".parse::<MatrixFormat>().is_err());
    }

    #[test]
    fn model_entries_reflect_padding_only_for_ell() {
        let csr = arrow();
        let nnz = csr.nnz();
        let csr_m = SparseMatrix::from_csr(csr.clone(), MatrixFormat::Csr);
        assert_eq!(csr_m.model_entries(), nnz);
        let ell_m = SparseMatrix::from_csr(csr, MatrixFormat::Ell);
        assert_eq!(ell_m.stored_entries(), nnz);
        assert_eq!(ell_m.model_entries(), 8 * 7, "padded to the dense arrow row");
    }
}
