//! The [`LinearOp`] abstraction: anything that can apply `y = A x`.
//!
//! The KPM recursion only ever multiplies the Hamiltonian into a vector, so
//! the whole method is generic over this single capability. Dense matrices,
//! CSR matrices, and the spectrally rescaled wrapper all implement it.

use crate::vecops;

/// A square linear operator `A : R^dim -> R^dim` applied as `y = A x`.
///
/// Implementations must be deterministic: two applications to the same input
/// must produce bitwise-identical output (the GPU/CPU equivalence tests rely
/// on this).
pub trait LinearOp {
    /// Dimension `D` of the operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    /// Implementations panic if `x.len() != self.dim()` or
    /// `y.len() != self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Number of stored scalar coefficients (dense: `D^2`; CSR: `nnz`).
    /// Drives the cost models.
    fn stored_entries(&self) -> usize;

    /// Number of coefficient slots a memory-traffic model should charge for.
    ///
    /// Identical to [`LinearOp::stored_entries`] for most formats, but padded
    /// formats (ELL) stream their padding too: there `model_entries` reports
    /// the padded slot count while `stored_entries` keeps the true `nnz` for
    /// physics-facing callers. Matrix-free operators report `0`.
    fn model_entries(&self) -> usize {
        self.stored_entries()
    }

    /// Computes `y = (A x - a_plus * x) * inv_a_minus` — the spectrally
    /// rescaled application `y = H~ x` in one logical operation.
    ///
    /// The default runs [`LinearOp::apply`] followed by the element-wise
    /// shift-and-scale pass; formats with their own kernels override it to
    /// apply the transform while the raw result is still in registers,
    /// saving a full read-modify-write pass over `y` (and a read of `x`)
    /// per application. Every implementation must compute exactly
    /// `(raw_i - a_plus * x_i) * inv_a_minus` per element so results stay
    /// bitwise identical to the default.
    ///
    /// # Panics
    /// Same contract as [`LinearOp::apply`].
    fn apply_rescaled(&self, x: &[f64], y: &mut [f64], a_plus: f64, inv_a_minus: f64) {
        self.apply(x, y);
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = (*yi - a_plus * xi) * inv_a_minus;
        }
    }

    /// Convenience: allocate and return `A x`.
    fn apply_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

/// The spectral rescaling of the paper's Eq. (8):
/// `H~ = (H - a_plus I) / a_minus`, applied as
/// `y = (A x - a_plus x) / a_minus`.
///
/// `a_plus = (E_upper + E_lower)/2`, `a_minus = (E_upper - E_lower)/2`
/// (Eq. 9), so the spectrum of `H~` lies in `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct RescaledOp<A> {
    inner: A,
    a_plus: f64,
    a_minus: f64,
}

impl<A: LinearOp> RescaledOp<A> {
    /// Wraps `inner` with the affine map `(x - a_plus)/a_minus`.
    ///
    /// # Panics
    /// Panics if `a_minus == 0.0` (degenerate spectrum: rescaling undefined).
    pub fn new(inner: A, a_plus: f64, a_minus: f64) -> Self {
        assert!(a_minus != 0.0, "RescaledOp: a_minus must be nonzero");
        Self { inner, a_plus, a_minus }
    }

    /// The centre `a_plus` of the affine map.
    pub fn a_plus(&self) -> f64 {
        self.a_plus
    }

    /// The half-width `a_minus` of the affine map.
    pub fn a_minus(&self) -> f64 {
        self.a_minus
    }

    /// Borrow the wrapped operator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Maps an eigenvalue of the *original* operator to the rescaled axis.
    pub fn to_rescaled(&self, e: f64) -> f64 {
        (e - self.a_plus) / self.a_minus
    }

    /// Maps a point on the rescaled axis back to the original energy axis
    /// (Eq. 12 inverted).
    pub fn to_original(&self, x: f64) -> f64 {
        x * self.a_minus + self.a_plus
    }
}

impl<A: LinearOp> LinearOp for RescaledOp<A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // y = (y - a_plus * x) / a_minus; formats fuse the pass into their
        // kernel's store step, the default runs it separately — bitwise
        // identical either way.
        self.inner.apply_rescaled(x, y, self.a_plus, 1.0 / self.a_minus);
    }

    fn stored_entries(&self) -> usize {
        self.inner.stored_entries()
    }

    fn model_entries(&self) -> usize {
        self.inner.model_entries()
    }
}

impl<A: LinearOp + ?Sized> LinearOp for &A {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }
    fn apply_rescaled(&self, x: &[f64], y: &mut [f64], a_plus: f64, inv_a_minus: f64) {
        (**self).apply_rescaled(x, y, a_plus, inv_a_minus)
    }
    fn stored_entries(&self) -> usize {
        (**self).stored_entries()
    }
    fn model_entries(&self) -> usize {
        (**self).model_entries()
    }
}

/// Identity operator of a given dimension — useful in tests and as the
/// trivial fixture for trace estimators (`Tr[T_n(I)] = D * T_n(1) = D`).
#[derive(Debug, Clone, Copy)]
pub struct IdentityOp {
    dim: usize,
}

impl IdentityOp {
    /// Identity on `R^dim`.
    pub fn new(dim: usize) -> Self {
        Self { dim }
    }
}

impl LinearOp for IdentityOp {
    fn dim(&self) -> usize {
        self.dim
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "IdentityOp: x length");
        assert_eq!(y.len(), self.dim, "IdentityOp: y length");
        vecops::copy(x, y);
    }
    fn stored_entries(&self) -> usize {
        self.dim
    }
}

/// Diagonal operator `y_i = d_i x_i` — the simplest nontrivial spectrum,
/// heavily used by validation tests because its eigenvalues are explicit.
#[derive(Debug, Clone)]
pub struct DiagonalOp {
    diag: Vec<f64>,
}

impl DiagonalOp {
    /// Builds the operator from its diagonal (= its spectrum).
    pub fn new(diag: Vec<f64>) -> Self {
        Self { diag }
    }

    /// The diagonal entries.
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }
}

impl LinearOp for DiagonalOp {
    fn dim(&self) -> usize {
        self.diag.len()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.diag.len(), "DiagonalOp: x length");
        assert_eq!(y.len(), self.diag.len(), "DiagonalOp: y length");
        for ((yi, &xi), &di) in y.iter_mut().zip(x).zip(&self.diag) {
            *yi = di * xi;
        }
    }
    fn stored_entries(&self) -> usize {
        self.diag.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_applies() {
        let id = IdentityOp::new(3);
        let y = id.apply_alloc(&[1.0, 2.0, 3.0][..]);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
        assert_eq!(id.dim(), 3);
        assert_eq!(id.stored_entries(), 3);
    }

    #[test]
    fn diagonal_applies() {
        let d = DiagonalOp::new(vec![2.0, -1.0, 0.5]);
        let y = d.apply_alloc(&[1.0, 1.0, 4.0]);
        assert_eq!(y, vec![2.0, -1.0, 2.0]);
    }

    #[test]
    fn rescaled_maps_spectrum_into_unit_interval() {
        // diag spectrum {-3, 1, 5}: a_plus = 1, a_minus = 4.
        let d = DiagonalOp::new(vec![-3.0, 1.0, 5.0]);
        let r = RescaledOp::new(d, 1.0, 4.0);
        assert_eq!(r.to_rescaled(-3.0), -1.0);
        assert_eq!(r.to_rescaled(1.0), 0.0);
        assert_eq!(r.to_rescaled(5.0), 1.0);
        assert_eq!(r.to_original(-1.0), -3.0);
        // Apply: eigenvector e_0 must pick up the rescaled eigenvalue.
        let y = r.apply_alloc(&[1.0, 0.0, 0.0]);
        assert_eq!(y, vec![-1.0, 0.0, 0.0]);
    }

    #[test]
    fn rescaled_roundtrip_is_identity() {
        let d = DiagonalOp::new(vec![0.0]);
        let r = RescaledOp::new(d, 0.7, 2.3);
        for &e in &[-5.0, -0.1, 0.0, 3.3] {
            let back = r.to_original(r.to_rescaled(e));
            assert!((back - e).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "a_minus must be nonzero")]
    fn rescaled_rejects_zero_width() {
        let _ = RescaledOp::new(IdentityOp::new(1), 0.0, 0.0);
    }

    #[test]
    fn blanket_ref_impl_works() {
        fn dim_of<A: LinearOp>(a: A) -> usize {
            a.dim()
        }
        let id = IdentityOp::new(4);
        let by_ref: &IdentityOp = &id;
        assert_eq!(dim_of(by_ref), 4, "&A goes through the blanket impl");
        assert_eq!(dim_of(id), 4);
    }
}
