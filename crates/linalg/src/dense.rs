//! Row-major dense matrix.
//!
//! Figures 7 and 8 of the paper run the KPM with the Hamiltonian stored
//! *dense* ("all the elements in the H~ matrix are applied to all the
//! calculations"), so the dense matvec is a first-class code path here, not
//! just a debugging aid.

use crate::error::LinalgError;
use crate::op::LinearOp;

/// A dense `nrows x ncols` matrix of `f64`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds from a generator function `f(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Self { nrows, ncols, data }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::DimensionMismatch {
                expected: nrows * ncols,
                found: data.len(),
                what: "data",
            });
        }
        Ok(Self { nrows, ncols, data })
    }

    /// Builds a diagonal matrix from its diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.nrows, "row {i} out of bounds ({} rows)", self.nrows);
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "({i}, {j}) out of bounds");
        self.data[i * self.ncols + j]
    }

    /// Element assignment.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols, "({i}, {j}) out of bounds");
        self.data[i * self.ncols + j] = v;
    }

    /// Dense matrix-vector product `y = A x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length");
        assert_eq!(y.len(), self.nrows, "matvec: y length");
        for (yi, row) in y.iter_mut().zip(self.data.chunks_exact(self.ncols)) {
            *yi = crate::vecops::dot(row, x);
        }
    }

    /// Symmetry check within absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t.data[j * self.nrows + i] = self.data[i * self.ncols + j];
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vecops::norm2(&self.data)
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.nrows).map(|i| self.data[i * self.ncols + i]).sum()
    }
}

impl LinearOp for DenseMatrix {
    fn dim(&self) -> usize {
        assert!(self.is_square(), "LinearOp requires a square matrix");
        self.nrows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }

    fn stored_entries(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(z.data().iter().all(|&v| v == 0.0));

        let id = DenseMatrix::identity(3);
        assert_eq!(id.trace(), 3.0);
        assert!(id.is_symmetric(0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn matvec_known_result() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut y = vec![0.0; 2];
        m.matvec(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_identity_is_noop() {
        let id = DenseMatrix::identity(5);
        let x: Vec<f64> = (0..5).map(|i| i as f64).collect();
        assert_eq!(id.apply_alloc(&x), x);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn symmetry_detection() {
        let sym = DenseMatrix::from_fn(3, 3, |i, j| (i + j) as f64);
        assert!(sym.is_symmetric(0.0));
        let mut asym = sym.clone();
        asym.set(0, 1, 99.0);
        assert!(!asym.is_symmetric(1e-12));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(0.0));
    }

    #[test]
    fn from_diag_and_trace() {
        let m = DenseMatrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.trace(), 6.0);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let m = DenseMatrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }
}
