//! Coordinate-format (triplet) sparse matrix builder.
//!
//! COO is the natural format to *assemble* a lattice Hamiltonian in (push one
//! triplet per hopping term); it is then converted once to [`CsrMatrix`] for
//! the compute loops. Duplicate entries are summed on conversion, which is
//! exactly what a tight-binding builder wants when multiple bonds hit the
//! same `(i, j)` pair (e.g. a periodic dimension of length 2).

use crate::csr::CsrMatrix;
use crate::error::LinalgError;

/// An unassembled sparse matrix: a bag of `(row, col, value)` triplets.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Empty builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Empty builder with triplet capacity reserved.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of triplets pushed so far (not deduplicated).
    pub fn triplet_count(&self) -> usize {
        self.vals.len()
    }

    /// Adds `v` at `(i, j)`. Duplicates are allowed and summed by
    /// [`CooMatrix::to_csr`].
    ///
    /// # Errors
    /// Returns [`LinalgError::IndexOutOfBounds`] if the indices exceed the
    /// matrix shape.
    pub fn push(&mut self, i: usize, j: usize, v: f64) -> Result<(), LinalgError> {
        if i >= self.nrows || j >= self.ncols {
            return Err(LinalgError::IndexOutOfBounds {
                row: i,
                col: j,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
        Ok(())
    }

    /// Adds `v` at `(i, j)` and `(j, i)` — one undirected hopping bond.
    ///
    /// # Errors
    /// Same as [`CooMatrix::push`].
    pub fn push_symmetric(&mut self, i: usize, j: usize, v: f64) -> Result<(), LinalgError> {
        self.push(i, j, v)?;
        if i != j {
            self.push(j, i, v)?;
        }
        Ok(())
    }

    /// Assembles into CSR: sorts triplets, sums duplicates.
    ///
    /// Explicit zeros are *kept* (the paper's lattice matrix stores the zero
    /// diagonal explicitly — "all diagonal ones are zeros" yet each row holds
    /// seven stored elements). Use [`CsrMatrix::prune`] to drop them.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column.
        let nnz = self.vals.len();
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let row_start = row_counts.clone();
        let mut order: Vec<usize> = vec![0; nnz];
        {
            let mut next = row_start.clone();
            for (t, &r) in self.rows.iter().enumerate() {
                order[next[r]] = t;
                next[r] += 1;
            }
        }
        // Per-row: sort by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            scratch.extend(
                order[row_start[r]..row_start[r + 1]].iter().map(|&t| (self.cols[t], self.vals[t])),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut it = scratch.iter().copied();
            if let Some((mut cur_c, mut cur_v)) = it.next() {
                for (c, v) in it {
                    if c == cur_c {
                        cur_v += v;
                    } else {
                        col_idx.push(cur_c);
                        values.push(cur_v);
                        cur_c = c;
                        cur_v = v;
                    }
                }
                col_idx.push(cur_c);
                values.push(cur_v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
            .expect("COO assembly produced invalid CSR — internal bug")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_gives_empty_csr() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 3);
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.5).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 4.0);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn symmetric_push_creates_both_entries() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 2, -1.0).unwrap();
        coo.push_symmetric(1, 1, 5.0).unwrap(); // diagonal: single entry
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 2), -1.0);
        assert_eq!(csr.get(2, 0), -1.0);
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn columns_sorted_within_rows() {
        let mut coo = CooMatrix::new(1, 5);
        for &c in &[4usize, 0, 2, 3, 1] {
            coo.push(0, c, c as f64).unwrap();
        }
        let csr = coo.to_csr();
        let cols: Vec<usize> = csr.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn explicit_zeros_are_kept() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1, "explicit zero must stay stored");
    }

    #[test]
    fn capacity_constructor_behaves_like_new() {
        let mut a = CooMatrix::with_capacity(4, 4, 16);
        let mut b = CooMatrix::new(4, 4);
        for (i, j) in [(0, 1), (3, 2), (2, 2)] {
            a.push(i, j, 1.0).unwrap();
            b.push(i, j, 1.0).unwrap();
        }
        assert_eq!(a.to_csr().to_dense().data(), b.to_csr().to_dense().data());
    }
}
