//! Error type shared by the linear-algebra substrate.

use std::fmt;

/// Errors produced while constructing or operating on matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// An index `(row, col)` fell outside the matrix shape `(nrows, ncols)`.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows of the target matrix.
        nrows: usize,
        /// Number of columns of the target matrix.
        ncols: usize,
    },
    /// Two operands had incompatible dimensions (e.g. matvec with a vector of
    /// the wrong length).
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was supplied.
        found: usize,
        /// Short label of the operand that was wrong ("x", "y", ...).
        what: &'static str,
    },
    /// CSR structural invariants were violated (non-monotone row pointers,
    /// column index out of range, wrong `row_ptr` length, ...).
    InvalidStructure(String),
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that gave up.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Rows of the offending matrix.
        nrows: usize,
        /// Columns of the offending matrix.
        ncols: usize,
    },
    /// The operation requires a symmetric matrix and the input was not
    /// symmetric within the stated tolerance.
    NotSymmetric,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "index ({row}, {col}) out of bounds for {nrows}x{ncols} matrix")
            }
            LinalgError::DimensionMismatch { expected, found, what } => {
                write!(f, "dimension mismatch for {what}: expected {expected}, found {found}")
            }
            LinalgError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            LinalgError::NoConvergence { algorithm, iterations } => {
                write!(f, "{algorithm} failed to converge after {iterations} iterations")
            }
            LinalgError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            LinalgError::NotSymmetric => write!(f, "operation requires a symmetric matrix"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::IndexOutOfBounds { row: 5, col: 7, nrows: 3, ncols: 4 };
        assert_eq!(e.to_string(), "index (5, 7) out of bounds for 3x4 matrix");

        let e = LinalgError::DimensionMismatch { expected: 10, found: 9, what: "x" };
        assert!(e.to_string().contains("expected 10"));
        assert!(e.to_string().contains("found 9"));

        let e = LinalgError::NoConvergence { algorithm: "jacobi", iterations: 100 };
        assert!(e.to_string().contains("jacobi"));

        let e = LinalgError::NotSquare { nrows: 2, ncols: 3 };
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::NotSymmetric);
    }
}
