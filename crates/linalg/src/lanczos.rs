//! Lanczos estimation of extremal eigenvalues.
//!
//! Gershgorin bounds (the paper's choice) are guaranteed but can be loose,
//! which wastes Chebyshev resolution: the rescaled spectrum then occupies
//! only part of `[-1, 1]`. A short Lanczos run gives tight estimates of
//! `E_min`/`E_max`; padded slightly they are a practical alternative the KPM
//! literature (Weiße et al. 2006, Sec. II.C) recommends. We provide both and
//! benchmark the difference in the ablations.

use crate::eigen::tridiagonal_eigenvalues;
use crate::error::LinalgError;
use crate::gershgorin::SpectralBounds;
use crate::op::LinearOp;
use crate::vecops;

/// Configuration for the Lanczos bound estimator.
#[derive(Debug, Clone, Copy)]
pub struct LanczosConfig {
    /// Maximum Krylov dimension (number of matvecs).
    pub max_steps: usize,
    /// Stop early when both extremal Ritz values move less than this
    /// (relative) between steps.
    pub tol: f64,
    /// Seed for the deterministic start vector.
    pub seed: u64,
}

impl Default for LanczosConfig {
    fn default() -> Self {
        Self { max_steps: 80, tol: 1e-10, seed: 0x5eed_1a2c_0defu64 }
    }
}

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Estimated extremal eigenvalues (smallest, largest Ritz values).
    pub bounds: SpectralBounds,
    /// Krylov steps actually performed.
    pub steps: usize,
    /// Full Ritz spectrum of the final tridiagonal matrix.
    pub ritz: Vec<f64>,
}

/// Runs Lanczos on a symmetric operator and returns estimated spectral
/// bounds.
///
/// The Ritz values converge to the extremal eigenvalues *from inside*, so
/// callers who need guaranteed enclosure should pad the result (e.g.
/// `result.bounds.padded(0.01)`); KPM only needs the spectrum inside
/// `[-1, 1]` after rescaling, so a small pad suffices in practice.
///
/// # Errors
/// Returns [`LinalgError::NoConvergence`] only if the tridiagonal eigensolve
/// itself fails; an unconverged Lanczos still returns its best estimate.
///
/// # Panics
/// Panics if the operator has dimension zero.
pub fn lanczos_bounds<A: LinearOp>(
    op: &A,
    config: &LanczosConfig,
) -> Result<LanczosResult, LinalgError> {
    let n = op.dim();
    assert!(n > 0, "lanczos: operator dimension must be positive");
    let m = config.max_steps.min(n).max(1);

    // Deterministic pseudo-random start vector (SplitMix64), normalized.
    let mut state = config.seed;
    let mut splitmix = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut v: Vec<f64> = (0..n)
        .map(|_| {
            // Uniform in (-1, 1).
            (splitmix() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect();
    let nrm = vecops::norm2(&v);
    vecops::scale(1.0 / nrm, &mut v);

    let mut v_prev = vec![0.0f64; n];
    let mut w = vec![0.0f64; n];
    let mut alpha: Vec<f64> = Vec::with_capacity(m);
    let mut beta: Vec<f64> = Vec::with_capacity(m.saturating_sub(1));
    let mut last_lo = f64::INFINITY;
    let mut last_hi = f64::NEG_INFINITY;
    let mut steps = 0;

    for k in 0..m {
        op.apply(&v, &mut w);
        let a = vecops::dot(&w, &v);
        alpha.push(a);
        // w = w - a v - b v_prev
        vecops::axpy(-a, &v, &mut w);
        if k > 0 {
            vecops::axpy(-beta[k - 1], &v_prev, &mut w);
        }
        // Full reorthogonalization is overkill for bound estimation; one
        // extra pass against v keeps the extremal Ritz values honest.
        let corr = vecops::dot(&w, &v);
        vecops::axpy(-corr, &v, &mut w);
        steps = k + 1;

        let ritz = tridiagonal_eigenvalues(&alpha, &beta)?;
        let lo = ritz[0];
        let hi = *ritz.last().expect("nonempty ritz");
        let scale = hi.abs().max(lo.abs()).max(1.0);
        if k > 0
            && (lo - last_lo).abs() <= config.tol * scale
            && (hi - last_hi).abs() <= config.tol * scale
        {
            return Ok(LanczosResult { bounds: SpectralBounds::new(lo, hi), steps, ritz });
        }
        last_lo = lo;
        last_hi = hi;

        let b = vecops::norm2(&w);
        if b <= f64::EPSILON * scale {
            // Invariant subspace found: the Ritz values are exact.
            return Ok(LanczosResult { bounds: SpectralBounds::new(lo, hi), steps, ritz });
        }
        if k + 1 < m {
            beta.push(b);
            let inv = 1.0 / b;
            std::mem::swap(&mut v_prev, &mut v);
            // v = w / b
            for (vi, &wi) in v.iter_mut().zip(&w) {
                *vi = wi * inv;
            }
        }
    }

    let ritz = tridiagonal_eigenvalues(&alpha, &beta)?;
    let lo = ritz[0];
    let hi = *ritz.last().expect("nonempty ritz");
    Ok(LanczosResult { bounds: SpectralBounds::new(lo, hi), steps, ritz })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::op::DiagonalOp;

    #[test]
    fn exact_on_diagonal_operator() {
        let d = DiagonalOp::new((0..32).map(|i| i as f64 * 0.25 - 3.0).collect());
        let r = lanczos_bounds(&d, &LanczosConfig::default()).unwrap();
        assert!((r.bounds.lower - (-3.0)).abs() < 1e-8, "lower {:?}", r.bounds);
        assert!((r.bounds.upper - 4.75).abs() < 1e-8, "upper {:?}", r.bounds);
    }

    #[test]
    fn tighter_than_gershgorin_on_chain() {
        let n = 64;
        let m = DenseMatrix::from_fn(n, n, |i, j| if i.abs_diff(j) == 1 { -1.0 } else { 0.0 });
        let g = crate::gershgorin::gershgorin_dense(&m);
        let r = lanczos_bounds(&m, &LanczosConfig::default()).unwrap();
        // Chain spectrum is (-2, 2) exclusive; Gershgorin gives exactly
        // [-2, 2]; Lanczos estimates lie strictly inside.
        assert!(r.bounds.lower >= g.lower - 1e-9);
        assert!(r.bounds.upper <= g.upper + 1e-9);
        let exact_hi = 2.0 * (std::f64::consts::PI * n as f64 / (n as f64 + 1.0)).cos().abs();
        assert!((r.bounds.upper - exact_hi).abs() < 1e-6, "{} vs {exact_hi}", r.bounds.upper);
    }

    #[test]
    fn early_termination_on_small_invariant_subspace() {
        // Identity: Krylov space is 1-dimensional, must stop immediately.
        let id = crate::op::IdentityOp::new(50);
        let r = lanczos_bounds(&id, &LanczosConfig::default()).unwrap();
        assert!(r.steps <= 2, "took {} steps on identity", r.steps);
        assert!((r.bounds.lower - 1.0).abs() < 1e-12);
        assert!((r.bounds.upper - 1.0).abs() < 1e-12);
    }

    #[test]
    fn respects_max_steps() {
        let d = DiagonalOp::new((0..256).map(|i| (i as f64).sin()).collect());
        let cfg = LanczosConfig { max_steps: 5, ..Default::default() };
        let r = lanczos_bounds(&d, &cfg).unwrap();
        assert!(r.steps <= 5);
        assert_eq!(r.ritz.len(), r.steps);
    }

    #[test]
    fn deterministic_across_runs() {
        let d = DiagonalOp::new((0..40).map(|i| (i as f64 * 1.7).cos()).collect());
        let a = lanczos_bounds(&d, &LanczosConfig::default()).unwrap();
        let b = lanczos_bounds(&d, &LanczosConfig::default()).unwrap();
        assert_eq!(a.bounds, b.bounds);
        assert_eq!(a.steps, b.steps);
    }
}
