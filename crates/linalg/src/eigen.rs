//! Exact eigensolvers for validation.
//!
//! The paper positions KPM against *full diagonalization* (`O(D^3)`). To
//! validate the KPM density of states we need that ground truth on small
//! systems, so this module implements:
//!
//! * the cyclic Jacobi rotation method for dense symmetric matrices — slow
//!   but simple and extremely robust, plenty for `D <= ~1000`;
//! * the implicit-shift QL algorithm for symmetric tridiagonal matrices —
//!   the classic `tql`-style routine, consumed by the Lanczos bound
//!   estimator in [`crate::lanczos`].

use crate::dense::DenseMatrix;
use crate::error::LinalgError;

/// Eigenvalues of a dense symmetric matrix via cyclic Jacobi rotations,
/// returned sorted ascending.
///
/// # Errors
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::NotSymmetric`] if `|a_ij - a_ji| > 1e-10 * ||A||_F`.
/// * [`LinalgError::NoConvergence`] if the off-diagonal mass fails to reach
///   machine precision within 100 sweeps (does not happen for symmetric
///   input).
pub fn jacobi_eigenvalues(m: &DenseMatrix) -> Result<Vec<f64>, LinalgError> {
    Ok(jacobi(m, false)?.0)
}

/// Eigenvalues **and** orthonormal eigenvectors (columns of the returned
/// matrix) of a dense symmetric matrix, eigenvalues sorted ascending.
///
/// # Errors
/// Same conditions as [`jacobi_eigenvalues`].
pub fn jacobi_eigen(m: &DenseMatrix) -> Result<(Vec<f64>, DenseMatrix), LinalgError> {
    let (vals, vecs) = jacobi(m, true)?;
    Ok((vals, vecs.expect("vectors requested")))
}

fn jacobi(
    m: &DenseMatrix,
    want_vectors: bool,
) -> Result<(Vec<f64>, Option<DenseMatrix>), LinalgError> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare { nrows: m.nrows(), ncols: m.ncols() });
    }
    let n = m.nrows();
    let fro = m.frobenius_norm();
    if !m.is_symmetric(1e-10 * fro.max(1.0)) {
        return Err(LinalgError::NotSymmetric);
    }
    if n == 0 {
        return Ok((Vec::new(), want_vectors.then(|| DenseMatrix::zeros(0, 0))));
    }

    let mut a: Vec<f64> = m.data().to_vec();
    let idx = |i: usize, j: usize| i * n + j;
    let mut v = want_vectors.then(|| DenseMatrix::identity(n));

    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[idx(i, j)] * a[idx(i, j)];
            }
        }
        if off.sqrt() <= f64::EPSILON * fro.max(f64::MIN_POSITIVE) {
            let mut vals: Vec<f64> = (0..n).map(|i| a[idx(i, i)]).collect();
            let order = sorted_order(&vals);
            vals.sort_by(f64::total_cmp);
            let vecs = v.map(|vm| permute_columns(&vm, &order));
            return Ok((vals, vecs));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[idx(p, q)];
                if apq == 0.0 {
                    continue;
                }
                let app = a[idx(p, p)];
                let aqq = a[idx(q, q)];
                // Rotation angle: tan(2θ) = 2 a_pq / (a_qq - a_pp).
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    if k != p && k != q {
                        let akp = a[idx(k, p)];
                        let akq = a[idx(k, q)];
                        a[idx(k, p)] = c * akp - s * akq;
                        a[idx(p, k)] = a[idx(k, p)];
                        a[idx(k, q)] = s * akp + c * akq;
                        a[idx(q, k)] = a[idx(k, q)];
                    }
                }
                a[idx(p, p)] = app - t * apq;
                a[idx(q, q)] = aqq + t * apq;
                a[idx(p, q)] = 0.0;
                a[idx(q, p)] = 0.0;
                if let Some(vm) = v.as_mut() {
                    let vd = vm.data_mut();
                    for k in 0..n {
                        let vkp = vd[idx(k, p)];
                        let vkq = vd[idx(k, q)];
                        vd[idx(k, p)] = c * vkp - s * vkq;
                        vd[idx(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
    }
    Err(LinalgError::NoConvergence { algorithm: "jacobi", iterations: MAX_SWEEPS })
}

fn sorted_order(vals: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..vals.len()).collect();
    order.sort_by(|&i, &j| vals[i].total_cmp(&vals[j]));
    order
}

fn permute_columns(m: &DenseMatrix, order: &[usize]) -> DenseMatrix {
    let n = m.nrows();
    DenseMatrix::from_fn(n, n, |i, j| m.get(i, order[j]))
}

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `diag`
/// (length `n`) and sub/super-diagonal `off` (length `n - 1`), via the
/// implicit-shift QL algorithm. Returned sorted ascending.
///
/// # Errors
/// * [`LinalgError::DimensionMismatch`] if `off.len() + 1 != diag.len()`.
/// * [`LinalgError::NoConvergence`] if any eigenvalue needs more than 50 QL
///   iterations.
pub fn tridiagonal_eigenvalues(diag: &[f64], off: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = diag.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if off.len() + 1 != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n - 1,
            found: off.len(),
            what: "off-diagonal",
        });
    }
    let mut d = diag.to_vec();
    // e is padded to length n with a trailing zero, as in the classic tql1.
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(off);
    e.push(0.0);

    const MAX_ITER: usize = 50;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first small off-diagonal element at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_ITER {
                return Err(LinalgError::NoConvergence {
                    algorithm: "tridiagonal QL",
                    iterations: MAX_ITER,
                });
            }
            // Form the implicit Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                f = 0.0;
                let _ = f;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(f64::total_cmp);
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_matrix(n: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, n, |i, j| if i.abs_diff(j) == 1 { -1.0 } else { 0.0 })
    }

    /// Analytic spectrum of the open chain: 2 cos(k pi/(n+1)) * (-1) hopping
    /// sign gives -2 cos(...) — same set since cos is symmetric over k.
    fn chain_spectrum(n: usize) -> Vec<f64> {
        let mut e: Vec<f64> = (1..=n)
            .map(|k| -2.0 * (std::f64::consts::PI * k as f64 / (n as f64 + 1.0)).cos())
            .collect();
        e.sort_by(f64::total_cmp);
        e
    }

    #[test]
    fn jacobi_on_diagonal_matrix() {
        let m = DenseMatrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = jacobi_eigenvalues(&m).unwrap();
        assert_eq!(e, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn jacobi_on_2x2_known() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let m = DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = jacobi_eigenvalues(&m).unwrap();
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_matches_analytic_chain_spectrum() {
        let n = 12;
        let e = jacobi_eigenvalues(&chain_matrix(n)).unwrap();
        let expected = chain_spectrum(n);
        for (a, b) in e.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index spans several arrays in assertions
    fn jacobi_eigenvectors_diagonalize() {
        let n = 6;
        let m = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                i as f64 * 0.3
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else if i.abs_diff(j) == 2 {
                0.25
            } else {
                0.0
            }
        });
        let (vals, vecs) = jacobi_eigen(&m).unwrap();
        // Check A v_k = lambda_k v_k column-by-column.
        for k in 0..n {
            let vk: Vec<f64> = (0..n).map(|i| vecs.get(i, k)).collect();
            let mut av = vec![0.0; n];
            m.matvec(&vk, &mut av);
            for i in 0..n {
                assert!((av[i] - vals[k] * vk[i]).abs() < 1e-9, "residual too large at ({i}, {k})");
            }
        }
        // Orthonormality.
        for a in 0..n {
            for b in 0..n {
                let va: Vec<f64> = (0..n).map(|i| vecs.get(i, a)).collect();
                let vb: Vec<f64> = (0..n).map(|i| vecs.get(i, b)).collect();
                let d = crate::vecops::dot(&va, &vb);
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn jacobi_rejects_asymmetric() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 5.0, 0.0, 1.0]).unwrap();
        assert!(matches!(jacobi_eigenvalues(&m), Err(LinalgError::NotSymmetric)));
    }

    #[test]
    fn jacobi_rejects_rectangular() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(matches!(jacobi_eigenvalues(&m), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn jacobi_empty_matrix() {
        let m = DenseMatrix::zeros(0, 0);
        assert!(jacobi_eigenvalues(&m).unwrap().is_empty());
    }

    #[test]
    fn tridiagonal_matches_jacobi() {
        let n = 10;
        let diag: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let off: Vec<f64> = (0..n - 1).map(|i| 1.0 + 0.1 * i as f64).collect();
        let tq = tridiagonal_eigenvalues(&diag, &off).unwrap();
        let m = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                diag[i]
            } else if i.abs_diff(j) == 1 {
                off[i.min(j)]
            } else {
                0.0
            }
        });
        let jc = jacobi_eigenvalues(&m).unwrap();
        for (a, b) in tq.iter().zip(&jc) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn tridiagonal_chain_spectrum() {
        let n = 15;
        let diag = vec![0.0; n];
        let off = vec![-1.0; n - 1];
        let e = tridiagonal_eigenvalues(&diag, &off).unwrap();
        let expected = chain_spectrum(n);
        for (a, b) in e.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn tridiagonal_single_element() {
        assert_eq!(tridiagonal_eigenvalues(&[4.2], &[]).unwrap(), vec![4.2]);
        assert!(tridiagonal_eigenvalues(&[], &[]).unwrap().is_empty());
    }

    #[test]
    fn tridiagonal_rejects_bad_lengths() {
        assert!(tridiagonal_eigenvalues(&[1.0, 2.0], &[]).is_err());
        assert!(tridiagonal_eigenvalues(&[1.0], &[1.0, 2.0]).is_err());
    }
}
