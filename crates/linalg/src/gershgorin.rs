//! Gershgorin spectral bounds — the paper's Eq. (8)–(9).
//!
//! Every eigenvalue of `H` lies in the union of the discs
//! `|λ - H_ii| <= Σ_{j≠i} |H_ij|`, so
//! `E_lower = min_i (H_ii - R_i)` and `E_upper = max_i (H_ii + R_i)`
//! bound the spectrum. The paper uses exactly these to form
//! `a_± = (E_upper ± E_lower)/2` and rescale `H~ = (H - a_+)/a_-`.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::ell::EllMatrix;

/// Lower and upper bounds on the spectrum of a symmetric matrix, plus the
/// derived affine-rescaling coefficients of the paper's Eq. (9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralBounds {
    /// Guaranteed lower bound `E_lower`.
    pub lower: f64,
    /// Guaranteed upper bound `E_upper`.
    pub upper: f64,
}

impl SpectralBounds {
    /// Constructs from explicit bounds.
    ///
    /// # Panics
    /// Panics if `lower > upper` or either bound is not finite.
    pub fn new(lower: f64, upper: f64) -> Self {
        assert!(lower.is_finite() && upper.is_finite(), "bounds must be finite");
        assert!(lower <= upper, "lower bound exceeds upper bound");
        Self { lower, upper }
    }

    /// Centre of the interval: `a_+ = (E_upper + E_lower) / 2` (Eq. 9).
    pub fn a_plus(&self) -> f64 {
        0.5 * (self.upper + self.lower)
    }

    /// Half-width of the interval: `a_- = (E_upper - E_lower) / 2` (Eq. 9).
    ///
    /// For a degenerate interval (single point spectrum) this is zero and the
    /// caller must widen via [`SpectralBounds::padded`] before rescaling.
    pub fn a_minus(&self) -> f64 {
        0.5 * (self.upper - self.lower)
    }

    /// Returns bounds widened by a relative safety factor `eps`:
    /// the half-width grows by `eps * max(half_width, 1)`. KPM
    /// implementations conventionally pad a little so the rescaled spectrum
    /// stays strictly inside `(-1, 1)` where the Chebyshev weight
    /// `1/sqrt(1-x^2)` is finite.
    pub fn padded(&self, eps: f64) -> Self {
        assert!(eps >= 0.0, "padding must be nonnegative");
        let pad = eps * self.a_minus().max(1.0);
        Self { lower: self.lower - pad, upper: self.upper + pad }
    }

    /// Width `E_upper - E_lower`.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// `true` if `e` lies within the bounds (inclusive).
    pub fn contains(&self, e: f64) -> bool {
        self.lower <= e && e <= self.upper
    }
}

/// Gershgorin bounds for a dense square matrix.
///
/// # Panics
/// Panics if the matrix is not square or is empty.
pub fn gershgorin_dense(m: &DenseMatrix) -> SpectralBounds {
    assert!(m.is_square(), "gershgorin: matrix must be square");
    assert!(m.nrows() > 0, "gershgorin: matrix must be nonempty");
    let n = m.nrows();
    let mut lower = f64::INFINITY;
    let mut upper = f64::NEG_INFINITY;
    for i in 0..n {
        let row = m.row(i);
        let d = row[i];
        let radius: f64 =
            row.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v.abs()).sum();
        lower = lower.min(d - radius);
        upper = upper.max(d + radius);
    }
    SpectralBounds::new(lower, upper)
}

/// Gershgorin bounds for a CSR matrix.
///
/// # Panics
/// Panics if the matrix is not square or is empty.
pub fn gershgorin_csr(m: &CsrMatrix) -> SpectralBounds {
    assert_eq!(m.nrows(), m.ncols(), "gershgorin: matrix must be square");
    assert!(m.nrows() > 0, "gershgorin: matrix must be nonempty");
    let mut lower = f64::INFINITY;
    let mut upper = f64::NEG_INFINITY;
    for i in 0..m.nrows() {
        let mut d = 0.0;
        let mut radius = 0.0;
        for (j, v) in m.row_entries(i) {
            if j == i {
                d = v;
            } else {
                radius += v.abs();
            }
        }
        lower = lower.min(d - radius);
        upper = upper.max(d + radius);
    }
    SpectralBounds::new(lower, upper)
}

/// Gershgorin bounds for an ELL matrix. Rows hold the same entries in the
/// same order as the source CSR, so the result is bitwise identical to
/// [`gershgorin_csr`] on that matrix.
///
/// # Panics
/// Panics if the matrix is not square or is empty.
pub fn gershgorin_ell(m: &EllMatrix) -> SpectralBounds {
    assert_eq!(m.nrows(), m.ncols(), "gershgorin: matrix must be square");
    assert!(m.nrows() > 0, "gershgorin: matrix must be nonempty");
    let mut lower = f64::INFINITY;
    let mut upper = f64::NEG_INFINITY;
    for i in 0..m.nrows() {
        let mut d = 0.0;
        let mut radius = 0.0;
        for (j, v) in m.row_entries(i) {
            if j == i {
                d = v;
            } else {
                radius += v.abs();
            }
        }
        lower = lower.min(d - radius);
        upper = upper.max(d + radius);
    }
    SpectralBounds::new(lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::eigen::jacobi_eigenvalues;

    #[test]
    fn diagonal_matrix_bounds_are_tight() {
        let m = DenseMatrix::from_diag(&[-2.0, 0.5, 7.0]);
        let b = gershgorin_dense(&m);
        assert_eq!(b.lower, -2.0);
        assert_eq!(b.upper, 7.0);
        assert_eq!(b.a_plus(), 2.5);
        assert_eq!(b.a_minus(), 4.5);
    }

    #[test]
    fn csr_and_dense_agree() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push_symmetric(0, 1, -1.0).unwrap();
        coo.push_symmetric(1, 2, 2.0).unwrap();
        coo.push_symmetric(2, 3, -0.5).unwrap();
        coo.push(0, 0, 3.0).unwrap();
        let csr = coo.to_csr();
        let d = csr.to_dense();
        assert_eq!(gershgorin_csr(&csr), gershgorin_dense(&d));
        assert_eq!(gershgorin_ell(&EllMatrix::from_csr(&csr)), gershgorin_csr(&csr));
    }

    #[test]
    fn bounds_contain_actual_eigenvalues() {
        // Symmetric tridiagonal with known spectrum: -t chain eigenvalues
        // are 2 cos(k pi / (n+1)), all inside Gershgorin's [-2, 2].
        let n = 8;
        let m = DenseMatrix::from_fn(n, n, |i, j| if i.abs_diff(j) == 1 { -1.0 } else { 0.0 });
        let b = gershgorin_dense(&m);
        let eig = jacobi_eigenvalues(&m).unwrap();
        for &e in &eig {
            assert!(b.contains(e), "eigenvalue {e} escaped bounds {b:?}");
        }
    }

    #[test]
    fn padding_widens() {
        let b = SpectralBounds::new(-1.0, 1.0);
        let p = b.padded(0.01);
        assert!(p.lower < -1.0 && p.upper > 1.0);
        assert!((p.width() - 2.02).abs() < 1e-12);
    }

    #[test]
    fn padding_handles_degenerate_interval() {
        let b = SpectralBounds::new(3.0, 3.0);
        assert_eq!(b.a_minus(), 0.0);
        let p = b.padded(0.1);
        assert!(p.a_minus() > 0.0, "padding must break the degenerate interval");
        assert!(p.contains(3.0));
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper")]
    fn inverted_bounds_rejected() {
        let _ = SpectralBounds::new(1.0, -1.0);
    }
}
