//! Compressed Sparse Row storage — the "CRS format" named by the paper.
//!
//! The KPM's `O(D)` complexity claim rests on the Hamiltonian being sparse
//! with `O(1)` entries per row; CSR makes the matvec `O(nnz)` and is the
//! format both our CPU reference and the simulated-GPU kernels consume.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::op::LinearOp;

/// A sparse `nrows x ncols` matrix in CSR form.
///
/// Invariants (checked by [`CsrMatrix::from_raw`] and preserved by every
/// method):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * `row_ptr` is non-decreasing;
/// * within each row, column indices are strictly increasing and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays, validating every structural invariant.
    ///
    /// # Errors
    /// [`LinalgError::InvalidStructure`] describing the first violation.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        if row_ptr.len() != nrows + 1 {
            return Err(LinalgError::InvalidStructure(format!(
                "row_ptr length {} != nrows + 1 = {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(LinalgError::InvalidStructure(format!(
                "row_ptr[0] = {} (must be 0)",
                row_ptr[0]
            )));
        }
        if col_idx.len() != values.len() {
            return Err(LinalgError::InvalidStructure(format!(
                "col_idx length {} != values length {}",
                col_idx.len(),
                values.len()
            )));
        }
        if row_ptr[nrows] != col_idx.len() {
            return Err(LinalgError::InvalidStructure(format!(
                "row_ptr[nrows] = {} != nnz = {}",
                row_ptr[nrows],
                col_idx.len()
            )));
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(LinalgError::InvalidStructure(format!("row_ptr decreases at row {r}")));
            }
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in seg.windows(2) {
                if w[0] >= w[1] {
                    return Err(LinalgError::InvalidStructure(format!(
                        "columns not strictly increasing in row {r}"
                    )));
                }
            }
            if let Some(&last) = seg.last() {
                if last >= ncols {
                    return Err(LinalgError::InvalidStructure(format!(
                        "column {last} out of range in row {r} (ncols = {ncols})"
                    )));
                }
            }
        }
        Ok(Self { nrows, ncols, row_ptr, col_idx, values })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of *stored* entries (explicit zeros count).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `row_ptr` array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Stored entries of row `i` as `(col, value)` pairs.
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.nrows, "row {i} out of bounds");
        let seg = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[seg.clone()].iter().copied().zip(self.values[seg].iter().copied())
    }

    /// Value at `(i, j)`; `0.0` for entries not stored.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "({i}, {j}) out of bounds");
        let seg = self.row_ptr[i]..self.row_ptr[i + 1];
        match self.col_idx[seg.clone()].binary_search(&j) {
            Ok(k) => self.values[seg.start + k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product `y = A x` — the paper's step (2.1).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_impl(x, y, |acc, _| acc);
    }

    /// Fused rescaled product `y = (A x - a_plus * x) * inv_a_minus`: the
    /// shift-and-scale runs on each row's accumulator before the store, so
    /// the raw result never round-trips through memory. Per element this is
    /// exactly the [`crate::LinearOp::apply_rescaled`] sequence, keeping the
    /// result bitwise identical to the unfused two-pass form.
    ///
    /// # Panics
    /// Panics on dimension mismatch or if the matrix is not square.
    pub fn spmv_rescaled(&self, x: &[f64], y: &mut [f64], a_plus: f64, inv_a_minus: f64) {
        assert_eq!(self.nrows, self.ncols, "spmv_rescaled: matrix must be square");
        self.spmv_impl(x, y, |acc, i| (acc - a_plus * x[i]) * inv_a_minus);
    }

    fn spmv_impl<F: Fn(f64, usize) -> f64>(&self, x: &[f64], y: &mut [f64], f: F) {
        assert_eq!(x.len(), self.ncols, "spmv: x length");
        assert_eq!(y.len(), self.nrows, "spmv: y length");
        for (i, yi) in y.iter_mut().enumerate() {
            let seg = self.row_ptr[i]..self.row_ptr[i + 1];
            let mut acc = 0.0;
            for (&c, &v) in self.col_idx[seg.clone()].iter().zip(&self.values[seg]) {
                acc += v * x[c];
            }
            *yi = f(acc, i);
        }
    }

    /// Sparse matrix-multi-vector product `Y = A X` over a column-block.
    ///
    /// `x` holds `k` input columns of length `ncols` back to back
    /// (`x[j * ncols..(j + 1) * ncols]` is column `j`); `y` holds the `k`
    /// output columns of length `nrows` in the same layout. Each row's index
    /// and value segment is loaded once and reused across all `k` columns,
    /// which is the whole point of blocking: the matrix is streamed once per
    /// sweep instead of once per vector.
    ///
    /// Column `j` of the result is bitwise identical to
    /// `spmv(&x[j * ncols..], ..)` — the per-row accumulation order is the
    /// same ascending-column order, so blocked and one-vector code paths are
    /// interchangeable in the deterministic tests.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmm(&self, x: &[f64], y: &mut [f64], k: usize) {
        self.spmm_impl(x, y, k, |acc, _, _| acc);
    }

    /// Blocked form of [`CsrMatrix::spmv_rescaled`]:
    /// `Y = (A X - a_plus * X) * inv_a_minus` with the shift-and-scale fused
    /// into the store step, column by column bitwise identical to the
    /// one-vector fused kernel.
    ///
    /// # Panics
    /// Panics on dimension mismatch or if the matrix is not square.
    pub fn spmm_rescaled(&self, x: &[f64], y: &mut [f64], k: usize, a_plus: f64, inv_a_minus: f64) {
        assert_eq!(self.nrows, self.ncols, "spmm_rescaled: matrix must be square");
        let f = crate::block::rescaled_store(x, self.ncols, a_plus, inv_a_minus);
        self.spmm_impl(x, y, k, f);
    }

    fn spmm_impl<F: Fn(f64, usize, usize) -> f64>(&self, x: &[f64], y: &mut [f64], k: usize, f: F) {
        assert_eq!(x.len(), self.ncols * k, "spmm: x length");
        assert_eq!(y.len(), self.nrows * k, "spmm: y length");
        let nrows = self.nrows;
        self.spmm_rows_sink(x, k, 0..nrows, &mut |acc, i, j| y[j * nrows + i] = f(acc, i, j));
    }

    // Columns are processed in register-blocked chunks of four so each
    // decoded (col, value) pair is reused across four accumulators; per
    // column the accumulation still runs over the row's entries in
    // ascending-column order, so results stay bitwise equal to `spmv`. The
    // sink receives the raw accumulator per `(row, col)`; full-block callers
    // store it (optionally through a rescale transform), the tiled engine
    // fuses the Chebyshev update and dot accumulation in the same call.
    //
    // Contract relied on by `crate::tiled`: within `rows`, every `(i, j)` is
    // visited exactly once, and per column the rows arrive in ascending
    // order.
    pub(crate) fn spmm_rows_sink<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: std::ops::Range<usize>,
        sink: &mut S,
    ) {
        const CHUNK: usize = 4;
        for i in rows {
            let seg = self.row_ptr[i]..self.row_ptr[i + 1];
            let cols = &self.col_idx[seg.clone()];
            let vals = &self.values[seg];
            let mut j = 0;
            while j + CHUNK <= k {
                let mut acc = [0.0f64; CHUNK];
                for (&c, &v) in cols.iter().zip(vals) {
                    for (u, a) in acc.iter_mut().enumerate() {
                        *a += v * x[(j + u) * self.ncols + c];
                    }
                }
                for (u, &a) in acc.iter().enumerate() {
                    sink(a, i, j + u);
                }
                j += CHUNK;
            }
            while j < k {
                let xcol = &x[j * self.ncols..(j + 1) * self.ncols];
                let mut acc = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v * xcol[c];
                }
                sink(acc, i, j);
                j += 1;
            }
        }
    }

    /// Dense copy (small matrices / tests only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for (j, v) in self.row_entries(i) {
                d.set(i, j, v);
            }
        }
        d
    }

    /// Transposed copy (also CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            for (c, v) in self.row_entries(r) {
                let slot = next[c];
                col_idx[slot] = r;
                values[slot] = v;
                next[c] += 1;
            }
        }
        row_ptr.truncate(self.ncols);
        row_ptr.push(self.nnz());
        // Rows were visited in increasing order, so each transposed row's
        // columns are already sorted.
        CsrMatrix::from_raw(self.ncols, self.nrows, row_ptr, col_idx, values)
            .expect("transpose produced invalid CSR — internal bug")
    }

    /// Structural + numerical symmetry within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Different sparsity patterns can still be numerically symmetric
            // (explicit zeros on one side only) — fall back to value checks.
            for i in 0..self.nrows {
                for (j, v) in self.row_entries(i) {
                    if (v - self.get(j, i)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.values.iter().zip(&t.values).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns a copy with entries of magnitude `<= threshold` removed.
    pub fn prune(&self, threshold: f64) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        for i in 0..self.nrows {
            for (j, v) in self.row_entries(i) {
                if v.abs() > threshold {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
            .expect("prune produced invalid CSR — internal bug")
    }

    /// Maximum number of stored entries in any row.
    pub fn max_row_nnz(&self) -> usize {
        (0..self.nrows).map(|i| self.row_ptr[i + 1] - self.row_ptr[i]).max().unwrap_or(0)
    }
}

impl LinearOp for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(self.nrows, self.ncols, "LinearOp requires a square matrix");
        self.nrows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn apply_rescaled(&self, x: &[f64], y: &mut [f64], a_plus: f64, inv_a_minus: f64) {
        self.spmv_rescaled(x, y, a_plus, inv_a_minus);
    }

    fn stored_entries(&self) -> usize {
        self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_raw(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0])
            .unwrap()
    }

    #[test]
    fn from_raw_validates_row_ptr_length() {
        let e = CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(e, Err(LinalgError::InvalidStructure(_))));
    }

    #[test]
    fn from_raw_validates_first_pointer() {
        let e = CsrMatrix::from_raw(1, 2, vec![1, 1], vec![], vec![]);
        assert!(e.is_err());
    }

    #[test]
    fn from_raw_validates_monotonicity() {
        let e = CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(e.is_err());
    }

    #[test]
    fn from_raw_validates_column_order_and_range() {
        // duplicate column
        let e = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(e.is_err());
        // out-of-range column
        let e = CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(e.is_err());
        // nnz mismatch between col_idx and values
        let e = CsrMatrix::from_raw(1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]);
        assert!(e.is_err());
    }

    #[test]
    fn get_returns_stored_and_implicit_entries() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -1.0, 2.0];
        let mut ys = vec![0.0; 3];
        let mut yd = vec![0.0; 3];
        m.spmv(&x, &mut ys);
        d.matvec(&x, &mut yd);
        assert_eq!(ys, yd);
        assert_eq!(ys, vec![5.0, 0.0, -1.0]);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        // transpose twice is identity
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn symmetric_detection() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, -1.0).unwrap();
        coo.push_symmetric(1, 2, -1.0).unwrap();
        let m = coo.to_csr();
        assert!(m.is_symmetric(0.0));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn symmetry_with_asymmetric_pattern_but_symmetric_values() {
        // Explicit zero at (0,1) only; (1,0) not stored. Numerically symmetric.
        let m = CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![1], vec![0.0]).unwrap();
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn prune_drops_small_entries() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1e-14).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        let m = coo.to_csr();
        assert_eq!(m.nnz(), 2);
        let p = m.prune(1e-12);
        assert_eq!(p.nnz(), 1);
        assert_eq!(p.get(0, 1), 1.0);
    }

    #[test]
    fn max_row_nnz() {
        assert_eq!(sample().max_row_nnz(), 2);
        let empty = CsrMatrix::from_raw(0, 0, vec![0], vec![], vec![]).unwrap();
        assert_eq!(empty.max_row_nnz(), 0);
    }

    #[test]
    fn linear_op_impl() {
        let m = sample();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.stored_entries(), 4);
        let y = m.apply_alloc(&[1.0, 0.0, 0.0]);
        assert_eq!(y, vec![1.0, 0.0, 3.0]);
    }
}
