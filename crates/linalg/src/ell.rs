//! ELLPACK (ELL) sparse storage: padded, structure-of-arrays, slot-major.
//!
//! For the paper's lattice Hamiltonians every row stores (almost) the same
//! number of entries — seven for the periodic cubic lattice — so padding each
//! row to the maximum width wastes little and buys a completely regular
//! access pattern: entry `s` of row `i` lives at flat index `s * nrows + i`.
//! Walking slot-by-slot therefore streams `col_idx`/`values` contiguously
//! across rows, which is exactly the coalesced layout GPU SpMV kernels want
//! and is also friendly to CPU prefetchers. Padding slots are never read:
//! each row carries its true length in `row_len`.

use crate::csr::CsrMatrix;
use crate::op::LinearOp;

/// A sparse `nrows x ncols` matrix in slot-major ELLPACK form.
///
/// `col_idx` and `values` have length `nrows * width`; the `s`-th stored
/// entry of row `i` sits at `s * nrows + i`. Rows shorter than `width` are
/// padded with zero values at column 0, but kernels stop at `row_len[i]` so
/// the padding is inert. Within each row, entries keep the ascending-column
/// order of the source CSR, so per-row accumulation is bitwise identical to
/// [`CsrMatrix::spmv`].
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    nrows: usize,
    ncols: usize,
    width: usize,
    nnz: usize,
    row_len: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl EllMatrix {
    /// Converts a CSR matrix, padding every row to the maximum row width.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let width = csr.max_row_nnz();
        let mut row_len = Vec::with_capacity(nrows);
        let mut col_idx = vec![0usize; nrows * width];
        let mut values = vec![0.0f64; nrows * width];
        for i in 0..nrows {
            let mut len = 0;
            for (s, (c, v)) in csr.row_entries(i).enumerate() {
                col_idx[s * nrows + i] = c;
                values[s * nrows + i] = v;
                len += 1;
            }
            row_len.push(len);
        }
        Self { nrows, ncols, width, nnz: csr.nnz(), row_len, col_idx, values }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of *stored* entries, excluding padding (same count as the
    /// source CSR, explicit zeros included).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The padded row width (maximum stored entries in any row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total slots including padding: `nrows * width`. This is what a
    /// memory-traffic model should charge, since the format streams padding
    /// along with real entries.
    pub fn padded_entries(&self) -> usize {
        self.nrows * self.width
    }

    /// Stored entries of row `i` as `(col, value)` pairs in ascending-column
    /// order (padding excluded).
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.nrows, "row {i} out of bounds");
        (0..self.row_len[i]).map(move |s| {
            let idx = s * self.nrows + i;
            (self.col_idx[idx], self.values[idx])
        })
    }

    /// Sparse matrix-vector product `y = A x`.
    ///
    /// Bitwise identical to [`CsrMatrix::spmv`] on the source matrix: the
    /// per-row accumulation runs over the same entries in the same order.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_impl(x, y, |acc, _| acc);
    }

    /// Fused rescaled product `y = (A x - a_plus * x) * inv_a_minus`: the
    /// shift-and-scale runs on each row's accumulator before the store. Per
    /// element this is exactly the [`crate::LinearOp::apply_rescaled`]
    /// sequence, so the result is bitwise identical to the unfused form.
    ///
    /// # Panics
    /// Panics on dimension mismatch or if the matrix is not square.
    pub fn spmv_rescaled(&self, x: &[f64], y: &mut [f64], a_plus: f64, inv_a_minus: f64) {
        assert_eq!(self.nrows, self.ncols, "spmv_rescaled: matrix must be square");
        self.spmv_impl(x, y, |acc, i| (acc - a_plus * x[i]) * inv_a_minus);
    }

    fn spmv_impl<F: Fn(f64, usize) -> f64>(&self, x: &[f64], y: &mut [f64], f: F) {
        assert_eq!(x.len(), self.ncols, "spmv: x length");
        assert_eq!(y.len(), self.nrows, "spmv: y length");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for s in 0..self.row_len[i] {
                let idx = s * self.nrows + i;
                acc += self.values[idx] * x[self.col_idx[idx]];
            }
            *yi = f(acc, i);
        }
    }

    /// Sparse matrix-multi-vector product `Y = A X` over a `k`-column block
    /// (columns stored back to back, as in
    /// [`crate::BlockOp::apply_block`]).
    ///
    /// The walk is row-major — the slot-major layout then streams each slot
    /// plane's value and column arrays sequentially, one cache line ahead
    /// per plane — and within a row, columns are handled in register-blocked
    /// chunks of four so each decoded (col, value) pair is reused across
    /// four accumulators. Per column the slots accumulate in ascending slot
    /// (= ascending column) order, so each output column is bitwise
    /// identical to [`EllMatrix::spmv`] and the blocked and one-vector paths
    /// stay interchangeable. Padding slots are never touched (`row_len`
    /// bounds the slot loop): adding `0.0 * x[0]` could perturb signed zeros
    /// and is not bitwise inert.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmm(&self, x: &[f64], y: &mut [f64], k: usize) {
        self.spmm_impl(x, y, k, |acc, _, _| acc);
    }

    /// Blocked form of [`EllMatrix::spmv_rescaled`]:
    /// `Y = (A X - a_plus * X) * inv_a_minus` with the shift-and-scale fused
    /// into the store step, column by column bitwise identical to the
    /// one-vector fused kernel.
    ///
    /// # Panics
    /// Panics on dimension mismatch or if the matrix is not square.
    pub fn spmm_rescaled(&self, x: &[f64], y: &mut [f64], k: usize, a_plus: f64, inv_a_minus: f64) {
        assert_eq!(self.nrows, self.ncols, "spmm_rescaled: matrix must be square");
        let f = crate::block::rescaled_store(x, self.ncols, a_plus, inv_a_minus);
        self.spmm_impl(x, y, k, f);
    }

    fn spmm_impl<F: Fn(f64, usize, usize) -> f64>(&self, x: &[f64], y: &mut [f64], k: usize, f: F) {
        assert_eq!(x.len(), self.ncols * k, "spmm: x length");
        assert_eq!(y.len(), self.nrows * k, "spmm: y length");
        let n = self.nrows;
        self.spmm_rows_sink(x, k, 0..n, &mut |acc, i, j| y[j * n + i] = f(acc, i, j));
    }

    // Row-range streaming core behind `spmm`/`spmm_rescaled` and the tiled
    // engine. Same contract as `CsrMatrix::spmm_rows_sink`: each `(i, j)`
    // with `i` in `rows` is emitted exactly once, rows ascending per column.
    pub(crate) fn spmm_rows_sink<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: std::ops::Range<usize>,
        sink: &mut S,
    ) {
        const CHUNK: usize = 4;
        let n = self.nrows;
        for i in rows {
            let len = self.row_len[i];
            let mut j = 0;
            while j + CHUNK <= k {
                let mut acc = [0.0f64; CHUNK];
                for s in 0..len {
                    let idx = s * n + i;
                    let v = self.values[idx];
                    let c = self.col_idx[idx];
                    for (u, a) in acc.iter_mut().enumerate() {
                        *a += v * x[(j + u) * self.ncols + c];
                    }
                }
                for (u, &a) in acc.iter().enumerate() {
                    sink(a, i, j + u);
                }
                j += CHUNK;
            }
            while j < k {
                let xcol = &x[j * self.ncols..(j + 1) * self.ncols];
                let mut acc = 0.0;
                for s in 0..len {
                    let idx = s * n + i;
                    acc += self.values[idx] * xcol[self.col_idx[idx]];
                }
                sink(acc, i, j);
                j += 1;
            }
        }
    }

    /// Round-trips back to CSR (tests and format conversion).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        row_ptr.push(0);
        for i in 0..self.nrows {
            for (c, v) in self.row_entries(i) {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
            .expect("ELL round-trip produced invalid CSR — internal bug")
    }
}

impl LinearOp for EllMatrix {
    fn dim(&self) -> usize {
        assert_eq!(self.nrows, self.ncols, "LinearOp requires a square matrix");
        self.nrows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn apply_rescaled(&self, x: &[f64], y: &mut [f64], a_plus: f64, inv_a_minus: f64) {
        self.spmv_rescaled(x, y, a_plus, inv_a_minus);
    }

    fn stored_entries(&self) -> usize {
        self.nnz
    }

    fn model_entries(&self) -> usize {
        self.padded_entries()
    }
}

impl crate::block::BlockOp for EllMatrix {
    fn apply_block(&self, x: &[f64], y: &mut [f64], k: usize) {
        self.spmm(x, y, k);
    }

    fn apply_block_rescaled(
        &self,
        x: &[f64],
        y: &mut [f64],
        k: usize,
        a_plus: f64,
        inv_a_minus: f64,
    ) {
        self.spmm_rescaled(x, y, k, a_plus, inv_a_minus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockOp;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_raw(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0])
            .unwrap()
    }

    #[test]
    fn from_csr_preserves_structure() {
        let csr = sample();
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.nrows(), 3);
        assert_eq!(ell.ncols(), 3);
        assert_eq!(ell.nnz(), 4);
        assert_eq!(ell.width(), 2);
        assert_eq!(ell.padded_entries(), 6);
        assert_eq!(ell.to_csr(), csr);
    }

    #[test]
    fn spmv_is_bitwise_equal_to_csr() {
        let csr = sample();
        let ell = EllMatrix::from_csr(&csr);
        let x = [1.0, -1.0, 2.0];
        let mut y_csr = vec![0.0; 3];
        let mut y_ell = vec![0.0; 3];
        csr.spmv(&x, &mut y_csr);
        ell.spmv(&x, &mut y_ell);
        assert_eq!(y_csr, y_ell);
    }

    #[test]
    fn spmm_is_bitwise_equal_to_csr_per_column() {
        let csr = sample();
        let ell = EllMatrix::from_csr(&csr);
        let k = 4;
        let x: Vec<f64> = (0..3 * k).map(|i| (i as f64).sin() - 0.3).collect();
        let y_csr = csr.apply_block_alloc(&x, k);
        let y_ell = ell.apply_block_alloc(&x, k);
        assert_eq!(y_csr, y_ell);
    }

    #[test]
    fn entry_accounting_splits_stored_and_model() {
        let ell = EllMatrix::from_csr(&sample());
        assert_eq!(ell.stored_entries(), 4, "true nnz for physics callers");
        assert_eq!(ell.model_entries(), 6, "padded slots for cost models");
    }

    #[test]
    fn empty_matrix_is_fine() {
        let csr = CsrMatrix::from_raw(0, 0, vec![0], vec![], vec![]).unwrap();
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.padded_entries(), 0);
        let mut y = vec![];
        ell.spmv(&[], &mut y);
    }
}
