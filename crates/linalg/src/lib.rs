//! Dense and sparse linear-algebra substrate for the KPM reproduction suite.
//!
//! The Kernel Polynomial Method needs only a narrow slice of linear algebra,
//! but the paper (Zhang et al., 2011) depends on all of it:
//!
//! * BLAS-1 style vector kernels ([`vecops`]) — the dot products and fused
//!   Chebyshev update `r_{n+2} = 2 H r_{n+1} - r_n` are the hot loops of the
//!   whole method.
//! * A row-major dense matrix ([`DenseMatrix`]) — the paper's Figs. 7 and 8
//!   deliberately run the Hamiltonian *dense* ("the simple case when the CRS
//!   format is not applied").
//! * Compressed Sparse Row storage ([`CsrMatrix`], built via [`CooMatrix`]) —
//!   the paper's Fig. 5 lattice Hamiltonian is sparse/symmetric with seven
//!   stored entries per row; CSR is the CRS format the paper names.
//! * Spectral bounds ([`gershgorin`], [`lanczos`]) — Eq. (8)–(9) of the paper
//!   rescale the Hamiltonian into `[-1, 1]` using Gershgorin's theorem.
//! * Exact eigensolvers ([`eigen`]) — ground truth for validating the KPM
//!   density of states on small systems (cyclic Jacobi for dense symmetric
//!   matrices, implicit-shift QL for symmetric tridiagonals from Lanczos).
//!
//! Everything is `f64`: the paper performs all KPM calculations in double
//! precision, and so do we.

pub mod block;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod ell;
pub mod error;
pub mod gershgorin;
pub mod lanczos;
pub mod op;
pub mod sparse;
pub mod stencil;
pub mod tiled;
pub mod vecops;

pub use block::BlockOp;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use ell::EllMatrix;
pub use error::LinalgError;
pub use gershgorin::SpectralBounds;
pub use op::LinearOp;
pub use sparse::{MatrixFormat, SparseMatrix};
pub use stencil::{StencilGeometry, StencilOp};
pub use tiled::{TiledOp, TiledStats, DEFAULT_TILE_ROWS};
