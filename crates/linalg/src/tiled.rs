//! Row-tiled fused Chebyshev recursion engine — in-realization parallelism.
//!
//! The paper's GPU speedup comes from executing the whole Chebyshev step —
//! SpMV, the `2 H v - prev` update, and the `<r0|rn>` reduction — inside one
//! resident kernel parallelized across the matrix dimension. This module is
//! the CPU analogue: the operator streams a *row range* of the block product
//! into a sink ([`TiledOp`]), and the engine partitions the `D` rows into
//! tiles. Each tile streams its slice of `A x` into a small per-worker
//! scratch that never leaves L1, then runs the same vectorized
//! combine-and-dot kernel as the untiled path over the cache-hot tile — so
//! the Chebyshev update and the moment dots piggyback on the matrix sweep
//! without a full-size intermediate buffer. A work-stealing tile scheduler
//! keeps threads busy even when boundary tiles are cheaper than interior
//! ones.
//!
//! # Determinism
//!
//! Partial dots are a pure function of fixed row *segments* —
//! [`vecops::dot`] / [`vecops::chebyshev_combine_dot`] over fixed slices,
//! stored into private slot segments; the per-step reduction sums the slots
//! in canonical (ascending) segment order on one thread. Which worker
//! executes a tile therefore cannot affect any bit of the result: for a
//! fixed tile size, moments are bitwise identical across thread counts,
//! including the single-threaded fast path. This is pinned by tests here and
//! in the `kpm` crate.
//!
//! The slot granularity is decoupled from the work granularity: when
//! `tile_rows` is a multiple of [`DEFAULT_TILE_ROWS`], each tile computes
//! its dots per canonical [`DEFAULT_TILE_ROWS`]-row segment (see
//! [`slot_rows_for`]), so the association — and therefore every bit of the
//! result — is identical for *any* such tile height. This is what lets the
//! autotuner in `kpm::tune` treat tile height as a free performance axis:
//! `tile_rows` in {128, 256, 384, ...} are pure scheduling choices. Tile
//! heights that are not a multiple of the canonical segment fall back to
//! per-tile slots (the historical association) and remain value-affecting.
//!
//! Tiled results are *not* bitwise identical to the untiled serial path
//! (a full-vector `vecops::dot` associates differently than per-tile dots
//! summed tile by tile) — they agree to rounding, and the `kpm` property
//! tests bound the difference at `1e-12` relative.
//!
//! # Memory traffic
//!
//! Per column of the block, a fused step reads `x` (8 B/row), reads and
//! writes `p` in place (16 B/row), and reads `r0` for the dot (8 B/row) —
//! 32 B/row plus the matrix stream; the raw product only ever lands in a
//! tile-sized per-worker scratch that stays cache-resident. The split
//! pipeline (SpMM into a `D x k` intermediate, then combine+dot) moves the
//! raw product through memory an extra time: 48 B/row plus the matrix. See
//! DESIGN.md §9 for the full accounting.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::block::BlockOp;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::ell::EllMatrix;
use crate::op::{DiagonalOp, IdentityOp, LinearOp, RescaledOp};
use crate::sparse::SparseMatrix;
use crate::stencil::StencilOp;
use crate::vecops;

/// Default tile height in rows.
///
/// 128 rows × 8 B × a handful of live columns keeps a tile's working set
/// inside L1/L2 while leaving enough tiles to balance on any realistic
/// thread count. Overridable at runtime via the `KPM_TILE_ROWS` environment
/// variable (read once by `kpm::exec`).
pub const DEFAULT_TILE_ROWS: usize = 128;

/// An operator whose block product can be streamed one row range at a time.
///
/// `stream_block_rows` produces exactly the values `(A x)[j * dim + i]` for
/// every `i` in `rows` and every column `j < k`, calling
/// `sink(value, i, j)` once per element with rows ascending within each
/// column. Each streamed value must be bitwise identical to what
/// [`BlockOp::apply_block`] stores at the same position — the tiled engine's
/// cross-format determinism rests on this, mirroring the blocked-vs-scalar
/// contract on [`BlockOp`].
pub trait TiledOp: BlockOp {
    /// Streams rows `rows` of the block product `A X` into `sink`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim() * k` or `rows.end > self.dim()`.
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    );

    /// Streams the same row range with any affine store transform factored
    /// out: the true product element is
    /// `(v - a_plus * x[j * dim + i]) * inv_a_minus` for each streamed `v`,
    /// where `(a_plus, inv_a_minus)` is the returned pair.
    ///
    /// The default streams final values and returns the identity
    /// `(0.0, 1.0)`. [`RescaledOp`] overrides it to stream its *inner*
    /// operator's raw values instead — applying the rescale per element
    /// inside a deeply composed sink closure defeats vectorization of the
    /// format kernels, while the tiled engine can apply the returned
    /// transform to a whole cache-hot tile at once
    /// ([`vecops::rescale_inplace`]) with bitwise-identical results.
    fn stream_block_rows_affine<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) -> (f64, f64) {
        self.stream_block_rows(x, k, rows, sink);
        (0.0, 1.0)
    }
}

impl<A: TiledOp + ?Sized> TiledOp for &A {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        (**self).stream_block_rows(x, k, rows, sink)
    }

    fn stream_block_rows_affine<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) -> (f64, f64) {
        (**self).stream_block_rows_affine(x, k, rows, sink)
    }
}

impl TiledOp for CsrMatrix {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        assert_eq!(x.len(), self.ncols() * k, "stream_block_rows: x length");
        assert!(rows.end <= self.nrows(), "stream_block_rows: row range");
        self.spmm_rows_sink(x, k, rows, sink);
    }
}

impl TiledOp for EllMatrix {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        assert_eq!(x.len(), self.ncols() * k, "stream_block_rows: x length");
        assert!(rows.end <= self.nrows(), "stream_block_rows: row range");
        self.spmm_rows_sink(x, k, rows, sink);
    }
}

impl TiledOp for StencilOp {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        assert_eq!(x.len(), self.dim() * k, "stream_block_rows: x length");
        assert!(rows.end <= self.dim(), "stream_block_rows: row range");
        self.stream_rows(x, k, rows, sink);
    }
}

impl TiledOp for DenseMatrix {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        let d = self.dim();
        assert_eq!(x.len(), d * k, "stream_block_rows: x length");
        assert!(rows.end <= d, "stream_block_rows: row range");
        // Same `vecops::dot(row, xcol)` as `apply_block`, so bitwise equal.
        for i in rows {
            let row = self.row(i);
            for j in 0..k {
                sink(vecops::dot(row, &x[j * d..(j + 1) * d]), i, j);
            }
        }
    }
}

impl TiledOp for IdentityOp {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        let d = self.dim();
        assert_eq!(x.len(), d * k, "stream_block_rows: x length");
        assert!(rows.end <= d, "stream_block_rows: row range");
        for i in rows {
            for j in 0..k {
                sink(x[j * d + i], i, j);
            }
        }
    }
}

impl TiledOp for DiagonalOp {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        let d = self.dim();
        assert_eq!(x.len(), d * k, "stream_block_rows: x length");
        assert!(rows.end <= d, "stream_block_rows: row range");
        let diag = self.diag();
        for i in rows {
            for j in 0..k {
                sink(diag[i] * x[j * d + i], i, j);
            }
        }
    }
}

impl TiledOp for SparseMatrix {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        match self {
            SparseMatrix::Csr(m) => m.stream_block_rows(x, k, rows, sink),
            SparseMatrix::Ell(m) => m.stream_block_rows(x, k, rows, sink),
            SparseMatrix::Stencil(s) => s.stream_block_rows(x, k, rows, sink),
        }
    }
}

impl<A: TiledOp> TiledOp for RescaledOp<A> {
    fn stream_block_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) {
        // Same `(val - a_plus x) * inv_a_minus` store transform the format
        // kernels fuse in, so streamed values stay bitwise identical to
        // `RescaledOp::apply_block`.
        let f = crate::block::rescaled_store(x, self.inner().dim(), self.a_plus(), {
            1.0 / self.a_minus()
        });
        self.inner().stream_block_rows(x, k, rows, &mut |val, i, j| sink(f(val, i, j), i, j));
    }

    fn stream_block_rows_affine<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: Range<usize>,
        sink: &mut S,
    ) -> (f64, f64) {
        // Stream the inner operator's values untouched and let the caller
        // apply the rescale to the whole tile, vectorized.
        self.inner().stream_block_rows(x, k, rows, sink);
        (self.a_plus(), 1.0 / self.a_minus())
    }
}

/// Counters reported by one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TiledStats {
    /// Tiles processed, summed over all steps.
    pub tiles: u64,
    /// Tiles executed by a worker other than their initial owner.
    pub steals: u64,
    /// Full sweeps over the operator (one per fused step).
    pub sweeps: u64,
}

/// A generation-counted spinning barrier for the step loop.
///
/// The engine synchronizes every worker twice per step (a few microseconds
/// apart), so parking threads in the OS would dominate; a short spin
/// followed by `yield_now` handles both the multi-core case and
/// single-core/oversubscribed hosts.
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    n: usize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        Self { count: AtomicUsize::new(0), generation: AtomicUsize::new(0), n }
    }

    /// Blocks until all `n` workers have arrived. The AcqRel arrival and
    /// Acquire generation load give every worker a happens-before edge over
    /// all writes the others made before arriving — this is what publishes
    /// tile buffer and slot writes between steps.
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arrival: reset for the next phase, then release everyone.
            // No new arrival can race the reset — all other workers are
            // spinning on `generation` below.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Per-worker tile queues with chase-the-tail stealing.
///
/// Each worker owns a contiguous tile range packed into one `AtomicU64`
/// (`start` in the high half, `end` in the low half). Owners pop from the
/// front, thieves pop from the back of a victim's range — both via CAS, so
/// a tile is executed exactly once. Ranges are contiguous and re-partitioned
/// by worker 0 between steps; stealing changes *who* runs a tile but never
/// *what* it computes, so it is invisible in the results.
struct TileQueues {
    ranges: Vec<AtomicU64>,
    steals: AtomicU64,
}

#[inline]
fn pack(start: usize, end: usize) -> u64 {
    ((start as u64) << 32) | end as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xffff_ffff) as usize)
}

impl TileQueues {
    fn new(workers: usize) -> Self {
        Self {
            ranges: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Repartitions `ntiles` tiles contiguously over the workers. Called by
    /// worker 0 between barriers; the next barrier's Release/Acquire pair
    /// publishes it to everyone.
    fn reset(&self, ntiles: usize) {
        let workers = self.ranges.len();
        for (w, range) in self.ranges.iter().enumerate() {
            range.store(pack(w * ntiles / workers, (w + 1) * ntiles / workers), Ordering::Relaxed);
        }
    }

    /// Owner path: take the front tile of `w`'s own range.
    fn pop_own(&self, w: usize) -> Option<usize> {
        let range = &self.ranges[w];
        let mut cur = range.load(Ordering::Acquire);
        loop {
            let (start, end) = unpack(cur);
            if start >= end {
                return None;
            }
            match range.compare_exchange_weak(
                cur,
                pack(start + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(start),
                Err(v) => cur = v,
            }
        }
    }

    /// Thief path: scan the other workers round-robin and take a victim's
    /// *back* tile, staying out of the owner's way at the front.
    fn steal(&self, w: usize) -> Option<usize> {
        let workers = self.ranges.len();
        for offset in 1..workers {
            let victim = &self.ranges[(w + offset) % workers];
            let mut cur = victim.load(Ordering::Acquire);
            loop {
                let (start, end) = unpack(cur);
                if start >= end {
                    break;
                }
                match victim.compare_exchange_weak(
                    cur,
                    pack(start, end - 1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(end - 1);
                    }
                    Err(v) => cur = v,
                }
            }
        }
        None
    }
}

/// Runs `nsteps` barrier-synchronized steps of `ntiles` tiles over
/// `workers` threads (the caller's thread is worker 0).
///
/// All workers execute the same step program: wait, drain tiles (own queue
/// first, then steal), wait. Worker 0 additionally runs `reduce(step)` and
/// repartitions the queues after the second barrier — the other workers are
/// already blocked on the next step's first barrier, so the reduction reads
/// every tile's slots race-free and in a fixed order regardless of which
/// worker produced them.
fn run_parallel<P>(
    workers: usize,
    ntiles: usize,
    nsteps: usize,
    process: P,
    mut reduce: impl FnMut(usize),
) -> TiledStats
where
    P: Fn(usize, usize, usize) + Sync,
{
    let stats =
        |steals: u64| TiledStats { tiles: (nsteps * ntiles) as u64, steals, sweeps: nsteps as u64 };
    if workers <= 1 {
        // Single-worker fast path: tiles in ascending order, same slots,
        // same reduction — bitwise identical to the threaded run by
        // construction.
        for step in 0..nsteps {
            for tile in 0..ntiles {
                process(step, tile, 0);
            }
            reduce(step);
        }
        return stats(0);
    }
    let barrier_start = SpinBarrier::new(workers);
    let barrier_end = SpinBarrier::new(workers);
    let queues = TileQueues::new(workers);
    queues.reset(ntiles);
    std::thread::scope(|scope| {
        for w in 1..workers {
            let barrier_start = &barrier_start;
            let barrier_end = &barrier_end;
            let queues = &queues;
            let process = &process;
            scope.spawn(move || {
                for step in 0..nsteps {
                    barrier_start.wait();
                    drain_tiles(queues, w, step, process);
                    barrier_end.wait();
                }
            });
        }
        for step in 0..nsteps {
            barrier_start.wait();
            drain_tiles(&queues, 0, step, &process);
            barrier_end.wait();
            reduce(step);
            queues.reset(ntiles);
        }
    });
    stats(queues.steals.load(Ordering::Relaxed))
}

/// One worker's share of a step: drain the own queue front-first, then
/// steal from the others until every queue is empty.
fn drain_tiles<P: Fn(usize, usize, usize)>(
    queues: &TileQueues,
    w: usize,
    step: usize,
    process: &P,
) {
    loop {
        let tile = match queues.pop_own(w) {
            Some(t) => Some(t),
            None => queues.steal(w),
        };
        match tile {
            Some(t) => process(step, t, w),
            None => break,
        }
    }
}

/// Raw pointers to the engine's shared mutable state. Tiles write disjoint
/// row ranges of the recursion buffers and disjoint slot segments, and every
/// cross-step read is ordered by a barrier, so the aliasing is benign; the
/// pointers exist to express that to the compiler without fabricating
/// overlapping `&mut` slices across threads.
#[derive(Clone, Copy)]
struct EngineBuffers {
    a: *mut f64,
    b: *mut f64,
    slots: *mut f64,
    /// `workers` stripes of `tile_rows * k` — each worker's private landing
    /// zone for the streamed tile of `A x`, small enough to stay in L1.
    scratch: *mut f64,
}

// Safety: see the field-level discussion above — all concurrent access is
// to disjoint indices, and step transitions are barrier-ordered.
unsafe impl Sync for EngineBuffers {}

#[inline]
fn tile_range(tile: usize, tile_rows: usize, d: usize) -> Range<usize> {
    let lo = tile * tile_rows;
    lo..(lo + tile_rows).min(d)
}

/// The row width of one dot *slot* for a given tile height: the canonical
/// [`DEFAULT_TILE_ROWS`] when `tile_rows` is a multiple of it (so the dot
/// association is independent of the tile height), the tile height itself
/// otherwise (the historical per-tile association).
#[inline]
pub fn slot_rows_for(tile_rows: usize) -> usize {
    if tile_rows > 0 && tile_rows.is_multiple_of(DEFAULT_TILE_ROWS) {
        DEFAULT_TILE_ROWS
    } else {
        tile_rows
    }
}

/// `true` when `tile_rows` produces bitwise-identical moments to the
/// default tile height — i.e. it lies on the canonical-segment grid. The
/// autotuner only emits tile heights satisfying this.
#[inline]
pub fn tile_rows_is_value_safe(tile_rows: usize) -> bool {
    slot_rows_for(tile_rows) == DEFAULT_TILE_ROWS
}

/// `mu[j][0] = <r0_j|r0_j>` accumulated per canonical segment in ascending
/// order — the degenerate `n == 1` case shared by both recursions.
fn tile_ordered_norms(r0: &[f64], d: usize, k: usize, tile_rows: usize) -> Vec<Vec<f64>> {
    let slot_rows = slot_rows_for(tile_rows);
    let nsegs = d.div_ceil(slot_rows);
    (0..k)
        .map(|j| {
            let col = &r0[j * d..(j + 1) * d];
            let mut total = 0.0;
            for seg in 0..nsegs {
                let seg = &col[tile_range(seg, slot_rows, d)];
                // Same per-segment `vecops::dot` association as step 0 of
                // the engines, so mu_0 is identical whichever path computes
                // it.
                total += vecops::dot(seg, seg);
            }
            vec![total]
        })
        .collect()
}

/// Tiled fused plain-recursion moments for a `D x k` block of start vectors.
///
/// Returns the raw (unnormalized) moments `mu[j][m] = <r0_j | T_m(A) r0_j>`
/// for `m < n` per column, plus the engine counters; callers divide by `D`.
/// `A` must already be rescaled into `[-1, 1]`.
///
/// Every step streams the operator exactly once: the tile's slice of `A x`
/// lands in an L1-resident per-worker scratch, and the in-place Chebyshev
/// combine fused with the `<r0|.>` dot runs on the tile immediately after,
/// while its rows are still cache-resident. For a fixed `tile_rows` the
/// result is bitwise independent of `threads` (see the module docs).
///
/// # Panics
/// Panics if `n == 0`, `tile_rows == 0`, or `r0.len() != dim * k`.
pub fn fused_block_moments_plain<A: TiledOp + Sync + ?Sized>(
    op: &A,
    r0: &[f64],
    k: usize,
    n: usize,
    threads: usize,
    tile_rows: usize,
) -> (Vec<Vec<f64>>, TiledStats) {
    let d = op.dim();
    assert!(n >= 1, "fused moments: need at least one moment");
    assert!(tile_rows >= 1, "fused moments: tile_rows must be positive");
    assert_eq!(r0.len(), d * k, "fused moments: r0 length");
    if d == 0 || k == 0 {
        return (vec![vec![0.0; n]; k], TiledStats::default());
    }
    if n == 1 {
        return (tile_ordered_norms(r0, d, k, tile_rows), TiledStats::default());
    }
    let ntiles = d.div_ceil(tile_rows);
    let workers = threads.clamp(1, ntiles);
    // Slot granularity is the canonical segment, not the tile: any
    // tile height on the canonical grid yields the same slots in the same
    // order, so the reduction is bitwise independent of `tile_rows` there.
    let slot_rows = slot_rows_for(tile_rows);
    let nsegs = d.div_ceil(slot_rows);
    let variant = vecops::kernel_variant();
    // Buffer `a` starts as r0 (= T_0 x), `b` receives T_1 x in step 0; from
    // then on the roles alternate by step parity and the previous vector is
    // overwritten in place.
    let mut a = r0.to_vec();
    let mut b = vec![0.0f64; d * k];
    const NSLOTS: usize = 2;
    let mut slots = vec![0.0f64; nsegs * NSLOTS * k];
    let mut scratch = vec![0.0f64; workers * tile_rows * k];
    let buffers = EngineBuffers {
        a: a.as_mut_ptr(),
        b: b.as_mut_ptr(),
        slots: slots.as_mut_ptr(),
        scratch: scratch.as_mut_ptr(),
    };
    let nsteps = n - 1;
    let process = move |step: usize, tile: usize, w: usize| {
        let buffers = buffers; // capture the whole Sync struct, not raw-pointer fields
        let rows = tile_range(tile, tile_rows, d);
        let row0 = rows.start;
        let len = rows.len();
        // Tiles on the canonical grid start on a segment boundary, so the
        // tile covers whole segments (the last may be ragged against `d`).
        let seg0 = row0 / slot_rows;
        let segs_here = len.div_ceil(slot_rows);
        // Safety: this tile's slot segments and buffer rows are touched by
        // no other tile this step, the scratch stripe belongs to worker `w`
        // alone, and the barrier orders steps. The stream lands in the
        // L1-resident scratch; the combine and dots then run over the hot
        // tile with the same vectorized kernels as the untiled path, so the
        // per-element sink stays a plain store.
        unsafe {
            let slots = buffers.slots;
            if step == 0 {
                // r1 = A r0 via the worker's scratch stripe (a disjoint
                // `&mut` slice — a raw-pointer sink would lose `noalias` and
                // devectorize the format kernels), copied out to `b`; then
                // <r0|r0> and <r0|r1> per canonical segment of the hot tile.
                let scratch_tile =
                    std::slice::from_raw_parts_mut(buffers.scratch.add(w * tile_rows * k), len * k);
                op.stream_block_rows(r0, k, rows.clone(), &mut |val, i, j| {
                    scratch_tile[j * len + (i - row0)] = val;
                });
                for j in 0..k {
                    let lo = j * d + row0;
                    let col = &scratch_tile[j * len..(j + 1) * len];
                    std::ptr::copy_nonoverlapping(col.as_ptr(), buffers.b.add(lo), len);
                    for s in 0..segs_here {
                        let off = s * slot_rows;
                        let seg_len = slot_rows.min(len - off);
                        let slot_base = (seg0 + s) * NSLOTS * k;
                        let r0s = &r0[lo + off..lo + off + seg_len];
                        let bs = &col[off..off + seg_len];
                        *slots.add(slot_base + j) = vecops::dot(r0s, r0s);
                        *slots.add(slot_base + k + j) = vecops::dot(r0s, bs);
                    }
                }
            } else {
                // Stream (A x)[tile] into the worker's scratch, then
                // r_{s+1} = 2 (A x) - r_{s-1} over r_{s-1} in place, fused
                // with <r0|r_{s+1}> per canonical segment.
                let (xp, pp) =
                    if step % 2 == 1 { (buffers.b, buffers.a) } else { (buffers.a, buffers.b) };
                let x = std::slice::from_raw_parts(xp as *const f64, d * k);
                // A real `&mut` slice, not a raw pointer: the sink closure's
                // store must carry `noalias` or it blocks vectorization of
                // the format kernels' register-tiled inner loops.
                let scratch_tile =
                    std::slice::from_raw_parts_mut(buffers.scratch.add(w * tile_rows * k), len * k);
                let (a_plus, inv) =
                    op.stream_block_rows_affine(x, k, rows.clone(), &mut |val, i, j| {
                        scratch_tile[j * len + (i - row0)] = val;
                    });
                for j in 0..k {
                    let lo = j * d + row0;
                    for s in 0..segs_here {
                        let off = s * slot_rows;
                        let seg_len = slot_rows.min(len - off);
                        let slot_base = (seg0 + s) * NSLOTS * k;
                        let r0s = &r0[lo + off..lo + off + seg_len];
                        let hs = &scratch_tile[j * len + off..j * len + off + seg_len];
                        let ps = std::slice::from_raw_parts_mut(pp.add(lo + off), seg_len);
                        *slots.add(slot_base + j) = if (a_plus, inv) == (0.0, 1.0) {
                            vecops::chebyshev_combine_dot_variant(variant, hs, ps, r0s)
                        } else {
                            let xs = &x[lo + off..lo + off + seg_len];
                            vecops::rescaled_chebyshev_combine_dot_variant(
                                variant, hs, xs, ps, r0s, a_plus, inv,
                            )
                        };
                    }
                }
            }
        }
    };
    let mut mu: Vec<Vec<f64>> = (0..k).map(|_| Vec::with_capacity(n)).collect();
    let slot_sum = |seg_slot: usize, j: usize| -> f64 {
        let mut total = 0.0;
        for seg in 0..nsegs {
            // Safety: worker 0 reads after the end-of-step barrier; no tile
            // is writing.
            total += unsafe { *buffers.slots.add(seg * NSLOTS * k + seg_slot * k + j) };
        }
        total
    };
    let reduce = |step: usize| {
        for (j, col) in mu.iter_mut().enumerate() {
            if step == 0 {
                col.push(slot_sum(0, j));
                col.push(slot_sum(1, j));
            } else {
                col.push(slot_sum(0, j));
            }
        }
    };
    let stats = run_parallel(workers, ntiles, nsteps, process, reduce);
    (mu, stats)
}

/// Tiled fused doubling-recursion moments — the `2n`-moments-from-`n`-sweeps
/// trick, with `<r_m|r_m>` and `<r_{m+1}|r_m>` accumulated inside the fused
/// step.
///
/// Same contract and determinism guarantees as
/// [`fused_block_moments_plain`]; uses the identities
/// `mu_{2m} = 2 <r_m|r_m> - mu_0` and `mu_{2m+1} = 2 <r_{m+1}|r_m> - mu_1`,
/// matching the untiled doubling path to rounding.
///
/// # Panics
/// Panics if `n == 0`, `tile_rows == 0`, or `r0.len() != dim * k`.
pub fn fused_block_moments_doubling<A: TiledOp + Sync + ?Sized>(
    op: &A,
    r0: &[f64],
    k: usize,
    n: usize,
    threads: usize,
    tile_rows: usize,
) -> (Vec<Vec<f64>>, TiledStats) {
    let d = op.dim();
    assert!(n >= 1, "fused moments: need at least one moment");
    assert!(tile_rows >= 1, "fused moments: tile_rows must be positive");
    assert_eq!(r0.len(), d * k, "fused moments: r0 length");
    if d == 0 || k == 0 {
        return (vec![vec![0.0; n]; k], TiledStats::default());
    }
    if n == 1 {
        return (tile_ordered_norms(r0, d, k, tile_rows), TiledStats::default());
    }
    let ntiles = d.div_ceil(tile_rows);
    let workers = threads.clamp(1, ntiles);
    // Canonical segment slots, as in the plain engine.
    let slot_rows = slot_rows_for(tile_rows);
    let nsegs = d.div_ceil(slot_rows);
    let mut a = r0.to_vec();
    let mut b = vec![0.0f64; d * k];
    const NSLOTS: usize = 3;
    let mut slots = vec![0.0f64; nsegs * NSLOTS * k];
    let mut scratch = vec![0.0f64; workers * tile_rows * k];
    let buffers = EngineBuffers {
        a: a.as_mut_ptr(),
        b: b.as_mut_ptr(),
        slots: slots.as_mut_ptr(),
        scratch: scratch.as_mut_ptr(),
    };
    // Step 0 yields mu_0, mu_1 and (via <r1|r1>) mu_2; each later step t
    // computes r_{t+1} and yields mu_{2t+1} and (when in range) mu_{2t+2}.
    // The last moment with t >= 1 is mu_{2t+1} <= n-1, so:
    let nsteps = 1 + if n <= 3 { 0 } else { (n - 2) / 2 };
    let process = move |step: usize, tile: usize, w: usize| {
        let buffers = buffers; // capture the whole Sync struct, not raw-pointer fields
        let rows = tile_range(tile, tile_rows, d);
        let row0 = rows.start;
        let len = rows.len();
        let seg0 = row0 / slot_rows;
        let segs_here = len.div_ceil(slot_rows);
        // Safety: as in the plain engine — disjoint tiles and scratch
        // stripes, barrier-ordered steps, combine + dots on the still-hot
        // tile after the stream.
        unsafe {
            let slots = buffers.slots;
            if step == 0 {
                // r1 = A r0 via the scratch stripe (see the plain engine);
                // then <r0|r0>, <r0|r1>, <r1|r1> per canonical segment.
                let scratch_tile =
                    std::slice::from_raw_parts_mut(buffers.scratch.add(w * tile_rows * k), len * k);
                op.stream_block_rows(r0, k, rows.clone(), &mut |val, i, j| {
                    scratch_tile[j * len + (i - row0)] = val;
                });
                for j in 0..k {
                    let lo = j * d + row0;
                    let col = &scratch_tile[j * len..(j + 1) * len];
                    std::ptr::copy_nonoverlapping(col.as_ptr(), buffers.b.add(lo), len);
                    for s in 0..segs_here {
                        let off = s * slot_rows;
                        let seg_len = slot_rows.min(len - off);
                        let slot_base = (seg0 + s) * NSLOTS * k;
                        let r0s = &r0[lo + off..lo + off + seg_len];
                        let bs = &col[off..off + seg_len];
                        *slots.add(slot_base + j) = vecops::dot(r0s, r0s);
                        *slots.add(slot_base + k + j) = vecops::dot(r0s, bs);
                        *slots.add(slot_base + 2 * k + j) = vecops::dot(bs, bs);
                    }
                }
            } else {
                // r_{t+1} = 2 A r_t - r_{t-1} via the scratch stripe; then
                // <r_t|r_{t+1}> and <r_{t+1}|r_{t+1}> per canonical segment.
                let (xp, pp) =
                    if step % 2 == 1 { (buffers.b, buffers.a) } else { (buffers.a, buffers.b) };
                let x = std::slice::from_raw_parts(xp as *const f64, d * k);
                // `&mut` slice rather than raw pointer for the same
                // `noalias` reason as in the plain engine.
                let scratch_tile =
                    std::slice::from_raw_parts_mut(buffers.scratch.add(w * tile_rows * k), len * k);
                let (a_plus, inv) =
                    op.stream_block_rows_affine(x, k, rows.clone(), &mut |val, i, j| {
                        scratch_tile[j * len + (i - row0)] = val;
                    });
                for j in 0..k {
                    let lo = j * d + row0;
                    for s in 0..segs_here {
                        let off = s * slot_rows;
                        let seg_len = slot_rows.min(len - off);
                        let slot_base = (seg0 + s) * NSLOTS * k;
                        let xs = &x[lo + off..lo + off + seg_len];
                        let hs = &scratch_tile[j * len + off..j * len + off + seg_len];
                        let ps = std::slice::from_raw_parts_mut(pp.add(lo + off), seg_len);
                        if (a_plus, inv) == (0.0, 1.0) {
                            vecops::chebyshev_combine_inplace(hs, ps);
                        } else {
                            vecops::rescaled_chebyshev_combine_inplace(hs, xs, ps, a_plus, inv);
                        }
                        let ps = &*ps;
                        *slots.add(slot_base + j) = vecops::dot(xs, ps);
                        *slots.add(slot_base + k + j) = vecops::dot(ps, ps);
                    }
                }
            }
        }
    };
    let mut mu: Vec<Vec<f64>> = (0..k).map(|_| Vec::with_capacity(n)).collect();
    let mut mu0 = vec![0.0f64; k];
    let mut mu1 = vec![0.0f64; k];
    let slot_sum = |seg_slot: usize, j: usize| -> f64 {
        let mut total = 0.0;
        for seg in 0..nsegs {
            // Safety: worker 0 reads after the end-of-step barrier.
            total += unsafe { *buffers.slots.add(seg * NSLOTS * k + seg_slot * k + j) };
        }
        total
    };
    let reduce = |step: usize| {
        for (j, col) in mu.iter_mut().enumerate() {
            if step == 0 {
                mu0[j] = slot_sum(0, j);
                mu1[j] = slot_sum(1, j);
                col.push(mu0[j]);
                if n > 1 {
                    col.push(mu1[j]);
                }
                if n > 2 {
                    col.push(2.0 * slot_sum(2, j) - mu0[j]);
                }
            } else {
                let cross = slot_sum(0, j);
                let norm = slot_sum(1, j);
                col.push(2.0 * cross - mu1[j]);
                if 2 * step + 2 < n {
                    col.push(2.0 * norm - mu0[j]);
                }
            }
        }
    };
    let stats = run_parallel(workers, ntiles, nsteps, process, reduce);
    (mu, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn ring(d: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(d, d);
        for i in 0..d {
            coo.push(i, (i + 1) % d, -0.4).unwrap();
            coo.push(i, (i + d - 1) % d, -0.4).unwrap();
        }
        coo.to_csr()
    }

    fn start_block(d: usize, k: usize) -> Vec<f64> {
        (0..d * k).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn streamed_values_match_apply_block_bitwise() {
        let d = 23;
        let k = 3;
        let csr = ring(d);
        let x: Vec<f64> = (0..d * k).map(|i| (i as f64).sin()).collect();
        let reference = csr.apply_block_alloc(&x, k);
        for op in [SparseMatrix::Csr(csr.clone()), SparseMatrix::Ell(EllMatrix::from_csr(&csr))] {
            let mut got = vec![f64::NAN; d * k];
            let mut count = 0usize;
            for lo in (0..d).step_by(7) {
                op.stream_block_rows(&x, k, lo..(lo + 7).min(d), &mut |val, i, j| {
                    got[j * d + i] = val;
                    count += 1;
                });
            }
            assert_eq!(count, d * k, "{}: every element exactly once", op.format_name());
            assert_eq!(got, reference, "{}", op.format_name());
        }
    }

    #[test]
    fn stencil_streaming_matches_csr_from_offset_ranges() {
        let s = StencilOp::hypercubic_uniform(&[4, 3, 2], &[true, false, true], 1.0, 0.2, true);
        let d = s.dim();
        let k = 2;
        let x: Vec<f64> = (0..d * k).map(|i| (i as f64 * 0.3).cos()).collect();
        let reference = s.to_csr().apply_block_alloc(&x, k);
        let mut got = vec![f64::NAN; d * k];
        for lo in (0..d).step_by(5) {
            s.stream_block_rows(&x, k, lo..(lo + 5).min(d), &mut |val, i, j| {
                got[j * d + i] = val;
            });
        }
        assert_eq!(got, reference, "seeded odometer must match full sweep");
    }

    #[test]
    fn rescaled_streaming_matches_rescaled_apply_block() {
        let r = RescaledOp::new(ring(17), 0.3, 1.7);
        let d = 17;
        let k = 2;
        let x: Vec<f64> = (0..d * k).map(|i| (i as f64).cos()).collect();
        let reference = r.apply_block_alloc(&x, k);
        let mut got = vec![f64::NAN; d * k];
        r.stream_block_rows(&x, k, 0..d, &mut |val, i, j| got[j * d + i] = val);
        assert_eq!(got, reference);
    }

    fn reference_plain_moments(op: &CsrMatrix, r0: &[f64], n: usize) -> Vec<f64> {
        // Textbook three-buffer recursion in plain f64 accumulation.
        let d = op.dim();
        let mut mu = Vec::with_capacity(n);
        let mut prev = r0.to_vec();
        mu.push(prev.iter().map(|v| v * v).sum());
        if n == 1 {
            return mu;
        }
        let mut cur = op.apply_alloc(&prev);
        mu.push(r0.iter().zip(&cur).map(|(a, b)| a * b).sum());
        for _ in 2..n {
            let mut next = op.apply_alloc(&cur);
            for i in 0..d {
                next[i] = 2.0 * next[i] - prev[i];
            }
            mu.push(r0.iter().zip(&next).map(|(a, b)| a * b).sum());
            prev = cur;
            cur = next;
        }
        mu
    }

    #[test]
    fn plain_engine_matches_reference_recursion() {
        let d = 61;
        let k = 2;
        let n = 9;
        let op = ring(d);
        let r0 = start_block(d, k);
        let (mu, stats) = fused_block_moments_plain(&op, &r0, k, n, 1, 16);
        assert_eq!(stats.sweeps, (n - 1) as u64);
        for j in 0..k {
            let reference = reference_plain_moments(&op, &r0[j * d..(j + 1) * d], n);
            assert_eq!(mu[j].len(), n);
            for m in 0..n {
                let scale = reference[m].abs().max(d as f64);
                assert!(
                    (mu[j][m] - reference[m]).abs() <= 1e-12 * scale,
                    "col {j} mu_{m}: {} vs {}",
                    mu[j][m],
                    reference[m]
                );
            }
        }
    }

    #[test]
    fn doubling_engine_matches_plain_engine() {
        let d = 47;
        let k = 3;
        let op = ring(d);
        let r0 = start_block(d, k);
        for n in [1, 2, 3, 4, 5, 6, 7, 12, 13] {
            let (plain, _) = fused_block_moments_plain(&op, &r0, k, n, 1, 8);
            let (doubling, _) = fused_block_moments_doubling(&op, &r0, k, n, 1, 8);
            for j in 0..k {
                assert_eq!(doubling[j].len(), n, "n = {n}");
                for m in 0..n {
                    let scale = plain[j][m].abs().max(d as f64);
                    assert!(
                        (doubling[j][m] - plain[j][m]).abs() <= 1e-10 * scale,
                        "n = {n}, col {j}, mu_{m}: {} vs {}",
                        doubling[j][m],
                        plain[j][m]
                    );
                }
            }
        }
    }

    #[test]
    fn results_bitwise_stable_across_thread_counts() {
        let d = 97;
        let k = 2;
        let n = 14;
        let op = SparseMatrix::Ell(EllMatrix::from_csr(&ring(d)));
        let r0 = start_block(d, k);
        let (reference_p, _) = fused_block_moments_plain(&op, &r0, k, n, 1, 16);
        let (reference_d, _) = fused_block_moments_doubling(&op, &r0, k, n, 1, 16);
        for threads in [2, 3, 4, 7] {
            let (mu_p, _) = fused_block_moments_plain(&op, &r0, k, n, threads, 16);
            let (mu_d, _) = fused_block_moments_doubling(&op, &r0, k, n, threads, 16);
            assert_eq!(mu_p, reference_p, "plain, {threads} threads");
            assert_eq!(mu_d, reference_d, "doubling, {threads} threads");
        }
    }

    #[test]
    fn canonical_grid_tile_heights_are_bitwise_identical() {
        // Any tile height on the canonical-segment grid must reproduce the
        // default tile height bit for bit — this is the invariant that lets
        // the autotuner treat tile height as pure scheduling. Use a
        // dimension larger than several segments with a ragged remainder.
        let d = DEFAULT_TILE_ROWS * 3 + 57;
        let k = 2;
        let n = 9;
        let op = ring(d);
        let r0 = start_block(d, k);
        let (ref_p, _) = fused_block_moments_plain(&op, &r0, k, n, 1, DEFAULT_TILE_ROWS);
        let (ref_d, _) = fused_block_moments_doubling(&op, &r0, k, n, 1, DEFAULT_TILE_ROWS);
        for mult in [2usize, 3, 4] {
            let tr = mult * DEFAULT_TILE_ROWS;
            assert!(tile_rows_is_value_safe(tr));
            for threads in [1usize, 3] {
                let (mu_p, _) = fused_block_moments_plain(&op, &r0, k, n, threads, tr);
                let (mu_d, _) = fused_block_moments_doubling(&op, &r0, k, n, threads, tr);
                assert_eq!(mu_p, ref_p, "plain, tile_rows = {tr}, {threads} threads");
                assert_eq!(mu_d, ref_d, "doubling, tile_rows = {tr}, {threads} threads");
            }
        }
        // Off-grid heights keep the historical per-tile association and are
        // allowed to differ in the last bits.
        assert!(!tile_rows_is_value_safe(200));
        assert!(!tile_rows_is_value_safe(64));
    }

    #[test]
    fn stats_count_tiles_and_sweeps() {
        let d = 40;
        let op = ring(d);
        let r0 = start_block(d, 1);
        let (_, stats) = fused_block_moments_plain(&op, &r0, 1, 5, 2, 8);
        assert_eq!(stats.sweeps, 4);
        assert_eq!(stats.tiles, 4 * 5, "5 tiles of 8 rows, 4 sweeps");
    }

    #[test]
    fn ragged_final_tile_is_handled() {
        let d = 19; // 3 tiles of 8: 8 + 8 + 3
        let op = ring(d);
        let r0 = start_block(d, 2);
        let (mu_t, _) = fused_block_moments_plain(&op, &r0, 2, 6, 3, 8);
        for j in 0..2 {
            let reference = reference_plain_moments(&op, &r0[j * d..(j + 1) * d], 6);
            for m in 0..6 {
                assert!((mu_t[j][m] - reference[m]).abs() <= 1e-12 * (d as f64));
            }
        }
    }

    #[test]
    fn single_moment_short_circuits() {
        let d = 10;
        let op = ring(d);
        let r0 = start_block(d, 2);
        let (mu, stats) = fused_block_moments_doubling(&op, &r0, 2, 1, 4, 4);
        assert_eq!(stats, TiledStats::default());
        for col in &mu {
            assert_eq!(col.len(), 1);
            assert!((col[0] - d as f64).abs() < 1e-12, "Rademacher norm is D");
        }
    }
}
