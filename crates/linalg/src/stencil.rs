//! Matrix-free stencil operator for tight-binding lattice Hamiltonians.
//!
//! The paper's Hamiltonian is a nearest-neighbour stencil on a cubic
//! lattice: every off-diagonal entry is the same `-t` and every neighbour
//! index is computable from the site index and the lattice extents. Storing
//! index arrays for that is pure overhead — [`StencilOp`] recomputes the
//! neighbour pattern on the fly, so the "matrix" costs no memory bandwidth
//! at all and the SpMM reads only the vectors (plus the on-site diagonal).
//!
//! Determinism contract: for the supported geometries the generated entry
//! set and the per-row ascending-column accumulation order match exactly
//! what the CSR built by the lattice crate produces, so stencil results are
//! bitwise identical to CSR/ELL results (the cross-format property tests
//! pin this).

use crate::block::BlockOp;
use crate::csr::CsrMatrix;
use crate::gershgorin::SpectralBounds;
use crate::op::LinearOp;

/// Which lattice geometry generates the stencil pattern.
///
/// The neighbour semantics replicate the lattice crate's enumeration rules:
/// dimensions of extent 1 contribute no bonds, self-loops are skipped, and a
/// neighbour reachable both ways (extent-2 periodic) is counted once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StencilGeometry {
    /// A hypercubic lattice with per-direction extents and periodicity.
    /// Sites are indexed row-major: `i = x_0 + L_0 (x_1 + L_1 (x_2 + ...))`.
    Hypercubic {
        /// Extent per dimension (all positive).
        dims: Vec<usize>,
        /// Periodic wrap per dimension (same length as `dims`).
        periodic: Vec<bool>,
    },
    /// An `lx x ly` honeycomb lattice (two-site unit cells, A sites even).
    Honeycomb {
        /// Unit cells along the first primitive direction.
        lx: usize,
        /// Unit cells along the second primitive direction.
        ly: usize,
        /// Periodic wrap along both directions.
        periodic: bool,
    },
}

impl StencilGeometry {
    /// Total number of sites `D`.
    pub fn num_sites(&self) -> usize {
        match self {
            StencilGeometry::Hypercubic { dims, .. } => dims.iter().product(),
            StencilGeometry::Honeycomb { lx, ly, .. } => 2 * lx * ly,
        }
    }

    /// Upper bound on neighbours per site (scratch sizing).
    fn max_neighbors(&self) -> usize {
        match self {
            StencilGeometry::Hypercubic { dims, .. } => 2 * dims.len(),
            StencilGeometry::Honeycomb { .. } => 3,
        }
    }

    /// Pushes the nearest neighbours of site `i` into `out` (cleared first),
    /// deduplicated, in the lattice crate's enumeration order.
    fn neighbors_into(&self, i: usize, out: &mut Vec<usize>) {
        out.clear();
        match self {
            StencilGeometry::Hypercubic { dims, periodic } => {
                // Row-major decomposition: first dimension varies fastest.
                let mut coords = [0usize; 8];
                let ndim = dims.len();
                let mut rem = i;
                for (k, &l) in dims.iter().enumerate() {
                    coords[k] = rem % l;
                    rem /= l;
                }
                let site_index = |coords: &[usize; 8], k: usize, c_new: usize| -> usize {
                    let mut idx = 0usize;
                    for d in (0..ndim).rev() {
                        let c = if d == k { c_new } else { coords[d] };
                        idx = idx * dims[d] + c;
                    }
                    idx
                };
                for k in 0..ndim {
                    let l = dims[k];
                    if l == 1 {
                        continue; // self-loop; no hopping term
                    }
                    let c = coords[k];
                    let push = |c_new: usize, out: &mut Vec<usize>| {
                        let j = site_index(&coords, k, c_new);
                        if j != i && !out.contains(&j) {
                            out.push(j);
                        }
                    };
                    if c + 1 < l {
                        push(c + 1, out);
                    } else if periodic[k] {
                        push((c + 1) % l, out);
                    }
                    if c >= 1 {
                        push(c - 1, out);
                    } else if periodic[k] {
                        push((c + l - 1) % l, out);
                    }
                }
            }
            StencilGeometry::Honeycomb { lx, ly, periodic } => {
                let b = i % 2 == 1;
                let cell = i / 2;
                let (x, y) = ((cell % lx) as isize, (cell / lx) as isize);
                let deltas: [(isize, isize); 3] = [(0, 0), (-1, 0), (0, -1)];
                for (dx, dy) in deltas {
                    let (dx, dy) = if b { (-dx, -dy) } else { (dx, dy) };
                    let (nx, ny) = (x + dx, y + dy);
                    let wrap = |v: isize, l: usize| -> Option<usize> {
                        if (0..l as isize).contains(&v) {
                            Some(v as usize)
                        } else if *periodic {
                            Some(v.rem_euclid(l as isize) as usize)
                        } else {
                            None
                        }
                    };
                    if let (Some(nx), Some(ny)) = (wrap(nx, *lx), wrap(ny, *ly)) {
                        let other = if b { 0 } else { 1 };
                        let j = 2 * (nx + lx * ny) + other;
                        if j != i && !out.contains(&j) {
                            out.push(j);
                        }
                    }
                }
            }
        }
    }
}

/// A matrix-free nearest-neighbour tight-binding operator: off-diagonal
/// entries are `-hopping` on the geometry's bonds, diagonal entries come
/// from the per-site `onsite` energies.
///
/// A diagonal entry is treated as *stored* — and therefore participates in
/// the row's accumulation and the entry count — iff `onsite[i] != 0.0` or
/// `store_zero_diagonal` is set, mirroring the lattice builders' rule so
/// the stencil's entry set matches the equivalent CSR exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilOp {
    geometry: StencilGeometry,
    hopping: f64,
    onsite: Vec<f64>,
    store_zero_diagonal: bool,
    stored: usize,
    plan: Option<InteriorPlan>,
}

/// Precomputed interior-row pattern for hypercubic geometries: the sorted
/// signed index offsets of a site's neighbours, valid wherever no lattice
/// direction wraps or truncates. Boundary rows (and non-hypercubic
/// geometries) fall back to the generic per-row enumeration, so the fast
/// path never changes which entries a row has — only how cheaply they are
/// generated.
#[derive(Debug, Clone, PartialEq)]
struct InteriorPlan {
    /// Negative neighbour offsets, ascending (columns below the diagonal).
    neg: Vec<isize>,
    /// Positive neighbour offsets, ascending (columns above the diagonal).
    pos: Vec<isize>,
}

impl StencilOp {
    /// Builds the operator.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (no dimensions, a zero extent,
    /// more than 8 hypercubic dimensions, mismatched `dims`/`periodic`
    /// lengths) or if `onsite.len() != geometry.num_sites()`.
    pub fn new(
        geometry: StencilGeometry,
        hopping: f64,
        onsite: Vec<f64>,
        store_zero_diagonal: bool,
    ) -> Self {
        match &geometry {
            StencilGeometry::Hypercubic { dims, periodic } => {
                assert!(!dims.is_empty(), "stencil: lattice must have at least one dimension");
                assert!(dims.len() <= 8, "stencil: at most 8 dimensions supported");
                assert!(dims.iter().all(|&l| l > 0), "stencil: every extent must be positive");
                assert_eq!(dims.len(), periodic.len(), "stencil: dims/periodic length mismatch");
            }
            StencilGeometry::Honeycomb { lx, ly, .. } => {
                assert!(*lx > 0 && *ly > 0, "stencil: extents must be positive");
            }
        }
        assert_eq!(onsite.len(), geometry.num_sites(), "stencil: onsite length");
        let plan = match &geometry {
            StencilGeometry::Hypercubic { dims, .. } => {
                // Directions of extent < 3 never have interior coordinates
                // (extent 1 has no bonds, extent 2 is all boundary), so only
                // extents >= 3 contribute offsets.
                let mut neg: Vec<isize> = Vec::new();
                let mut pos: Vec<isize> = Vec::new();
                let mut stride: isize = 1;
                for &l in dims {
                    if l >= 3 {
                        neg.push(-stride);
                        pos.push(stride);
                    }
                    stride *= l as isize;
                }
                neg.sort_unstable();
                pos.sort_unstable();
                Some(InteriorPlan { neg, pos })
            }
            StencilGeometry::Honeycomb { .. } => None,
        };
        let mut op = Self { geometry, hopping, onsite, store_zero_diagonal, stored: 0, plan };
        let mut scratch = Vec::with_capacity(op.geometry.max_neighbors());
        let mut stored = 0usize;
        for i in 0..op.onsite.len() {
            op.geometry.neighbors_into(i, &mut scratch);
            stored += scratch.len() + usize::from(op.diagonal_stored(i));
        }
        op.stored = stored;
        op
    }

    /// Convenience: hypercubic geometry with a uniform onsite energy.
    pub fn hypercubic_uniform(
        dims: &[usize],
        periodic: &[bool],
        hopping: f64,
        onsite: f64,
        store_zero_diagonal: bool,
    ) -> Self {
        let geometry =
            StencilGeometry::Hypercubic { dims: dims.to_vec(), periodic: periodic.to_vec() };
        let n = geometry.num_sites();
        Self::new(geometry, hopping, vec![onsite; n], store_zero_diagonal)
    }

    /// The generating geometry.
    pub fn geometry(&self) -> &StencilGeometry {
        &self.geometry
    }

    /// The hopping amplitude `t` (off-diagonal entries are `-t`).
    pub fn hopping(&self) -> f64 {
        self.hopping
    }

    /// Per-site onsite energies (the diagonal).
    pub fn onsite(&self) -> &[f64] {
        &self.onsite
    }

    fn diagonal_stored(&self, i: usize) -> bool {
        self.onsite[i] != 0.0 || self.store_zero_diagonal
    }

    /// Sorted stored-entry columns of row `i` into `cols`.
    fn row_cols_into(&self, i: usize, cols: &mut Vec<usize>) {
        self.geometry.neighbors_into(i, cols);
        if self.diagonal_stored(i) {
            cols.push(i);
        }
        cols.sort_unstable();
    }

    /// Value of the stored entry at `(i, c)` given that `c` is one of row
    /// `i`'s stored columns.
    #[inline]
    fn entry(&self, i: usize, c: usize) -> f64 {
        if c == i {
            self.onsite[i]
        } else {
            -self.hopping
        }
    }

    /// Gershgorin spectral bounds, computed row by row from the generated
    /// pattern — same discs as the equivalent CSR, since every off-diagonal
    /// magnitude is `|t|` and the diagonal matches.
    pub fn gershgorin_bounds(&self) -> SpectralBounds {
        let n = self.onsite.len();
        assert!(n > 0, "gershgorin: operator must be nonempty");
        let mut scratch = Vec::with_capacity(self.geometry.max_neighbors());
        let t_abs = self.hopping.abs();
        let mut lower = f64::INFINITY;
        let mut upper = f64::NEG_INFINITY;
        for i in 0..n {
            self.geometry.neighbors_into(i, &mut scratch);
            let mut radius = 0.0;
            for _ in 0..scratch.len() {
                radius += t_abs;
            }
            let d = if self.diagonal_stored(i) { self.onsite[i] } else { 0.0 };
            lower = lower.min(d - radius);
            upper = upper.max(d + radius);
        }
        SpectralBounds::new(lower, upper)
    }

    /// Materializes the stencil as a CSR matrix with the identical entry set
    /// (tests, format conversion, fallback paths).
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.onsite.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.stored);
        let mut values = Vec::with_capacity(self.stored);
        row_ptr.push(0);
        let mut cols = Vec::with_capacity(self.geometry.max_neighbors() + 1);
        for i in 0..n {
            self.row_cols_into(i, &mut cols);
            for &c in &cols {
                col_idx.push(c);
                values.push(self.entry(i, c));
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(n, n, row_ptr, col_idx, values)
            .expect("stencil produced invalid CSR — internal bug")
    }

    /// Shared SpMM kernel behind [`LinearOp::apply`] (`k = 1`) and
    /// [`BlockOp::apply_block`]. Interior rows of hypercubic geometries use
    /// the precomputed offset pattern and an odometer coordinate walk (no
    /// div/mod, no per-row sort); boundary rows and the honeycomb geometry
    /// regenerate their column set per row. Per column, entries accumulate
    /// in ascending-column order on both paths, preserving the bitwise
    /// contract with the materialized CSR. The store transform
    /// `f(acc, row, col)` is where the rescaled variants fuse their
    /// shift-and-scale.
    fn spmm_into<F: Fn(f64, usize, usize) -> f64>(&self, x: &[f64], y: &mut [f64], k: usize, f: F) {
        let n = self.onsite.len();
        assert_eq!(x.len(), n * k, "stencil spmm: x length");
        assert_eq!(y.len(), n * k, "stencil spmm: y length");
        self.stream_rows(x, k, 0..n, &mut |acc, i, j| y[j * n + i] = f(acc, i, j));
    }

    /// Row-range streaming core behind [`StencilOp::spmm_into`] and the
    /// tiled engine. Same contract as `CsrMatrix::spmm_rows_sink`: each
    /// `(i, j)` with `i` in `rows` is emitted exactly once, rows ascending
    /// per column, with per-element values bitwise identical to the
    /// full-matrix sweep (the odometer is seeded at `rows.start` with one
    /// div/mod chain and then walks exactly as the full sweep would).
    pub(crate) fn stream_rows<S: FnMut(f64, usize, usize)>(
        &self,
        x: &[f64],
        k: usize,
        rows: std::ops::Range<usize>,
        sink: &mut S,
    ) {
        let n = self.onsite.len();
        let mut cols = Vec::with_capacity(self.geometry.max_neighbors() + 1);
        if let (StencilGeometry::Hypercubic { dims, .. }, Some(plan)) = (&self.geometry, &self.plan)
        {
            let ndim = dims.len();
            let mut coords = [0usize; 8];
            let mut rem = rows.start;
            for (d, &l) in dims.iter().enumerate() {
                coords[d] = rem % l;
                rem /= l;
            }
            for i in rows {
                let interior =
                    dims.iter().zip(&coords).all(|(&l, &c)| l == 1 || (c >= 1 && c + 2 <= l));
                if interior {
                    // Below-diagonal hops, then the diagonal (when stored),
                    // then above-diagonal hops: the same ascending-column
                    // accumulation order as the generic path, with no
                    // per-entry branch in the hot loops. Columns run in
                    // register-blocked chunks of four so the offset decode
                    // and loop control amortize over four accumulators.
                    const CHUNK: usize = 4;
                    let t = -self.hopping;
                    let diag = if self.diagonal_stored(i) { Some(self.onsite[i]) } else { None };
                    let mut j = 0;
                    while j + CHUNK <= k {
                        let mut acc = [0.0f64; CHUNK];
                        let p0 = (j * n + i) as isize;
                        let stride = n as isize;
                        for &off in &plan.neg {
                            for (u, a) in acc.iter_mut().enumerate() {
                                *a += t * x[(p0 + u as isize * stride + off) as usize];
                            }
                        }
                        if let Some(d) = diag {
                            for (u, a) in acc.iter_mut().enumerate() {
                                *a += d * x[(j + u) * n + i];
                            }
                        }
                        for &off in &plan.pos {
                            for (u, a) in acc.iter_mut().enumerate() {
                                *a += t * x[(p0 + u as isize * stride + off) as usize];
                            }
                        }
                        for (u, &a) in acc.iter().enumerate() {
                            sink(a, i, j + u);
                        }
                        j += CHUNK;
                    }
                    while j < k {
                        let base = j * n;
                        let p = (base + i) as isize;
                        let mut acc = 0.0;
                        for &off in &plan.neg {
                            acc += t * x[(p + off) as usize];
                        }
                        if let Some(d) = diag {
                            acc += d * x[base + i];
                        }
                        for &off in &plan.pos {
                            acc += t * x[(p + off) as usize];
                        }
                        sink(acc, i, j);
                        j += 1;
                    }
                } else {
                    self.row_generic_sink(i, x, k, &mut cols, sink);
                }
                // Odometer increment: the first dimension varies fastest,
                // matching the row-major site indexing.
                for d in 0..ndim {
                    coords[d] += 1;
                    if coords[d] < dims[d] {
                        break;
                    }
                    coords[d] = 0;
                }
            }
        } else {
            for i in rows {
                self.row_generic_sink(i, x, k, &mut cols, sink);
            }
        }
    }

    /// One generic (boundary / honeycomb) row of the SpMM kernel.
    #[inline]
    fn row_generic_sink<S: FnMut(f64, usize, usize)>(
        &self,
        i: usize,
        x: &[f64],
        k: usize,
        cols: &mut Vec<usize>,
        sink: &mut S,
    ) {
        let n = self.onsite.len();
        self.row_cols_into(i, cols);
        for j in 0..k {
            let base = j * n;
            let mut acc = 0.0;
            for &c in cols.iter() {
                acc += self.entry(i, c) * x[base + c];
            }
            sink(acc, i, j);
        }
    }
}

impl LinearOp for StencilOp {
    fn dim(&self) -> usize {
        self.onsite.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmm_into(x, y, 1, |acc, _, _| acc);
    }

    fn apply_rescaled(&self, x: &[f64], y: &mut [f64], a_plus: f64, inv_a_minus: f64) {
        self.spmm_into(x, y, 1, |acc, i, _| (acc - a_plus * x[i]) * inv_a_minus);
    }

    fn stored_entries(&self) -> usize {
        self.stored
    }

    /// Matrix-free: a traffic model should charge nothing for the matrix.
    fn model_entries(&self) -> usize {
        0
    }
}

impl BlockOp for StencilOp {
    fn apply_block(&self, x: &[f64], y: &mut [f64], k: usize) {
        self.spmm_into(x, y, k, |acc, _, _| acc);
    }

    fn apply_block_rescaled(
        &self,
        x: &[f64],
        y: &mut [f64],
        k: usize,
        a_plus: f64,
        inv_a_minus: f64,
    ) {
        let f = crate::block::rescaled_store(x, self.onsite.len(), a_plus, inv_a_minus);
        self.spmm_into(x, y, k, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gershgorin::gershgorin_csr;

    fn cubic_stencil() -> StencilOp {
        StencilOp::hypercubic_uniform(&[3, 3, 3], &[true, true, true], 1.0, 0.0, true)
    }

    #[test]
    fn cubic_periodic_has_seven_stored_entries_per_row() {
        let s = cubic_stencil();
        assert_eq!(s.dim(), 27);
        assert_eq!(s.stored_entries(), 7 * 27);
        assert_eq!(s.model_entries(), 0, "matrix-free: no model traffic");
    }

    #[test]
    fn apply_is_bitwise_equal_to_materialized_csr() {
        for (s, name) in [
            (cubic_stencil(), "cubic"),
            (
                StencilOp::hypercubic_uniform(&[5], &[false], 1.3, -0.2, false),
                "open chain with onsite",
            ),
            (
                StencilOp::new(
                    StencilGeometry::Honeycomb { lx: 3, ly: 4, periodic: true },
                    1.0,
                    vec![0.0; 24],
                    false,
                ),
                "honeycomb",
            ),
        ] {
            let csr = s.to_csr();
            let d = s.dim();
            let x: Vec<f64> = (0..d).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
            assert_eq!(s.apply_alloc(&x), csr.apply_alloc(&x), "{name}");
            assert_eq!(s.stored_entries(), csr.nnz(), "{name}: entry count");
        }
    }

    #[test]
    fn block_apply_matches_column_loop() {
        let s = cubic_stencil();
        let d = s.dim();
        let k = 3;
        let x: Vec<f64> = (0..d * k).map(|i| (i as f64).cos()).collect();
        let blocked = crate::block::BlockOp::apply_block_alloc(&s, &x, k);
        for j in 0..k {
            let col = s.apply_alloc(&x[j * d..(j + 1) * d]);
            assert_eq!(&blocked[j * d..(j + 1) * d], &col[..], "column {j}");
        }
    }

    #[test]
    fn gershgorin_matches_csr_bounds() {
        let disorder: Vec<f64> = (0..12).map(|i| ((i % 5) as f64) * 0.3 - 0.6).collect();
        let s = StencilOp::new(
            StencilGeometry::Hypercubic { dims: vec![4, 3], periodic: vec![true, false] },
            0.9,
            disorder,
            true,
        );
        assert_eq!(s.gershgorin_bounds(), gershgorin_csr(&s.to_csr()));
    }

    #[test]
    fn extent_two_periodic_does_not_double_count() {
        let s = StencilOp::hypercubic_uniform(&[2], &[true], 1.0, 0.0, false);
        // One bond, seen from each endpoint: 2 stored entries, no diagonal.
        assert_eq!(s.stored_entries(), 2);
        let csr = s.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), -1.0);
    }

    #[test]
    fn extent_one_dimension_contributes_no_bonds() {
        let s = StencilOp::hypercubic_uniform(&[1, 4], &[true, true], 1.0, 0.0, false);
        assert_eq!(s.dim(), 4);
        assert_eq!(s.stored_entries(), 2 * 4, "ring of 4 sites only");
    }

    #[test]
    #[should_panic(expected = "onsite length")]
    fn onsite_length_validated() {
        let _ = StencilOp::new(
            StencilGeometry::Hypercubic { dims: vec![3], periodic: vec![false] },
            1.0,
            vec![0.0; 2],
            false,
        );
    }
}
