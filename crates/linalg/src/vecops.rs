//! BLAS-1 style vector kernels.
//!
//! These are the innermost loops of the KPM recursion. They are written over
//! slices with iterator zips so the compiler can elide bounds checks and
//! vectorize; all panic on length mismatch (a programming error, not a
//! recoverable condition).

/// Default for [`par_min_dim`]: the smallest operator dimension at which
/// realization-level rayon parallelism pays for its fork-join overhead.
///
/// The paper's flagship 10x10x10 lattice has `D = 1000`: per realization a
/// moment step is a few microseconds of work there, far below thread
/// dispatch cost, so the blocked recursion runs serially below this
/// threshold. Tuned empirically; see [`use_parallel`].
pub const PAR_MIN_DIM: usize = 4096;

/// Parses a positive-integer override value, rejecting `0`, empty, and
/// non-numeric input with a one-line stderr warning naming the variable.
///
/// Shared by every `KPM_*` environment override (`KPM_PAR_MIN_DIM` here,
/// `KPM_TILE_ROWS` in `kpm::exec`): garbage must not be silently accepted
/// as a tuning decision, and `0` is never a meaningful threshold or tile
/// height. Returns `None` (caller falls back) on anything invalid.
pub fn parse_positive_override(name: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(v) if v > 0 => Some(v),
        _ => {
            eprintln!("warning: ignoring {name}={raw:?}: expected a positive integer");
            None
        }
    }
}

/// Reads a positive-integer environment override via
/// [`parse_positive_override`]; `None` when unset or invalid.
pub fn positive_env_override(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| parse_positive_override(name, &v))
}

/// The realization-parallelism threshold actually in effect.
///
/// Defaults to [`PAR_MIN_DIM`]; the `KPM_PAR_MIN_DIM` environment variable
/// overrides it (useful for forcing the parallel path in tests or retuning
/// on unusual hardware without recompiling). The variable is read **once**,
/// on first use — changing it later in the process has no effect, so the
/// threshold is a constant throughout a run and scheduling stays
/// reproducible. `0` and non-numeric values are rejected with a stderr
/// warning and fall back to the default.
pub fn par_min_dim() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| positive_env_override("KPM_PAR_MIN_DIM").unwrap_or(PAR_MIN_DIM))
}

/// `true` when a `dim`-dimensional KPM workload is large enough that
/// splitting realizations across rayon workers beats running serially
/// (threshold: [`par_min_dim`]).
#[inline]
pub fn use_parallel(dim: usize) -> bool {
    dim >= par_min_dim()
}

/// Dot product `x · y`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Four-way unrolled accumulation: reduces the sequential FP dependency
    // chain, which matters for a loop this hot, and incidentally makes the
    // summation order deterministic and platform-independent.
    let mut acc = [0.0f64; 4];
    let (xc, xr) = x.split_at(x.len() - x.len() % 4);
    let (yc, yr) = y.split_at(xc.len());
    for (xs, ys) in xc.chunks_exact(4).zip(yc.chunks_exact(4)) {
        acc[0] += xs[0] * ys[0];
        acc[1] += xs[1] * ys[1];
        acc[2] += xs[2] * ys[2];
        acc[3] += xs[3] * ys[3];
    }
    let tail: f64 = xr.iter().zip(yr).map(|(a, b)| a * b).sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `y += alpha * x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `x += alpha` (element-wise shift; used by the spectral rescaling
/// `H~ = (H - a_+ I)/a_-` applied to a vector as `(H x - a_+ x)/a_-`).
#[inline]
pub fn shift(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi += alpha;
    }
}

/// Euclidean norm `||x||_2`, computed with scaling to avoid overflow for
/// extreme magnitudes.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let amax = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if amax == 0.0 || !amax.is_finite() {
        return amax;
    }
    let inv = 1.0 / amax;
    let ssq: f64 = x.iter().map(|&v| (v * inv) * (v * inv)).sum();
    amax * ssq.sqrt()
}

/// Fused Chebyshev step: `out[i] = 2.0 * hx[i] - prev[i]`.
///
/// This is Eq. (18) of the paper, `|r_{n+2}> = 2 H~ |r_{n+1}> - |r_n>`, with
/// `hx = H~ r_{n+1}` already formed. Fusing the scale and subtract halves the
/// memory traffic relative to two separate BLAS-1 passes.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn chebyshev_combine(hx: &[f64], prev: &[f64], out: &mut [f64]) {
    assert_eq!(hx.len(), prev.len(), "chebyshev_combine: length mismatch");
    assert_eq!(hx.len(), out.len(), "chebyshev_combine: length mismatch");
    for ((o, &h), &p) in out.iter_mut().zip(hx).zip(prev) {
        *o = 2.0 * h - p;
    }
}

/// In-place fused Chebyshev step: `prev[i] = 2.0 * hx[i] - prev[i]`.
///
/// Lets the caller recycle the `r_n` buffer as the `r_{n+2}` buffer, which is
/// exactly the pointer-swap scheme the paper uses on the GPU (Sec. III-B-1).
#[inline]
pub fn chebyshev_combine_inplace(hx: &[f64], prev: &mut [f64]) {
    assert_eq!(hx.len(), prev.len(), "chebyshev_combine_inplace: length mismatch");
    for (p, &h) in prev.iter_mut().zip(hx) {
        *p = 2.0 * h - *p;
    }
}

/// Fuses [`chebyshev_combine_inplace`] with the moment dot product: updates
/// `prev[i] = 2 * hx[i] - prev[i]` and returns `dot(r0, prev_new)` in a
/// single pass over the three vectors.
///
/// The KPM recursion computes the combine and then immediately dots the
/// result against the seed vector, which re-reads the freshly written block
/// from memory; fusing the two keeps each element in registers between the
/// update and the multiply. The reduction replicates [`dot`]'s exact
/// four-way-unrolled summation order, so the returned moment is bitwise
/// identical to `chebyshev_combine_inplace(hx, prev); dot(r0, prev)`.
///
/// # Panics
/// Panics if the three slices differ in length.
pub fn chebyshev_combine_dot(hx: &[f64], prev: &mut [f64], r0: &[f64]) -> f64 {
    assert_eq!(hx.len(), prev.len(), "chebyshev_combine_dot: length mismatch");
    assert_eq!(r0.len(), prev.len(), "chebyshev_combine_dot: length mismatch");
    let mut acc = [0.0f64; 4];
    let split = prev.len() - prev.len() % 4;
    let (pc, pr) = prev.split_at_mut(split);
    let (hc, hr) = hx.split_at(split);
    let (rc, rr) = r0.split_at(split);
    for ((ps, hs), rs) in pc.chunks_exact_mut(4).zip(hc.chunks_exact(4)).zip(rc.chunks_exact(4)) {
        ps[0] = 2.0 * hs[0] - ps[0];
        ps[1] = 2.0 * hs[1] - ps[1];
        ps[2] = 2.0 * hs[2] - ps[2];
        ps[3] = 2.0 * hs[3] - ps[3];
        acc[0] += rs[0] * ps[0];
        acc[1] += rs[1] * ps[1];
        acc[2] += rs[2] * ps[2];
        acc[3] += rs[3] * ps[3];
    }
    let tail: f64 = rr
        .iter()
        .zip(pr.iter_mut())
        .zip(hr)
        .map(|((&r, p), &h)| {
            *p = 2.0 * h - *p;
            r * *p
        })
        .sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// In-place spectral rescale of a streamed product segment:
/// `h[i] = (h[i] - a_plus * x[i]) * inv_a_minus`.
///
/// Element-for-element the same expression as the store transform fused into
/// the format kernels (`block::rescaled_store`), so applying it to raw
/// streamed values yields bitwise-identical results to streaming rescaled
/// values — just vectorized over a contiguous slice instead of scalar
/// per-element inside a sink.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn rescale_inplace(h: &mut [f64], x: &[f64], a_plus: f64, inv_a_minus: f64) {
    assert_eq!(h.len(), x.len(), "rescale_inplace: length mismatch");
    for (hv, &xv) in h.iter_mut().zip(x) {
        *hv = (*hv - a_plus * xv) * inv_a_minus;
    }
}

/// [`rescale_inplace`] fused with [`chebyshev_combine_dot`], reading the raw
/// streamed product instead of pre-rescaled values:
/// `prev[i] = 2 * ((hx[i] - a_plus * x[i]) * inv_a_minus) - prev[i]`, returns
/// `dot(r0, prev_new)`.
///
/// One pass over the tile instead of rescale-then-combine; bitwise identical
/// to `rescale_inplace(hx, x, ..); chebyshev_combine_dot(hx, prev, r0)`
/// because the per-element expressions and the four-way reduction order are
/// unchanged.
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn rescaled_chebyshev_combine_dot(
    hx: &[f64],
    x: &[f64],
    prev: &mut [f64],
    r0: &[f64],
    a_plus: f64,
    inv_a_minus: f64,
) -> f64 {
    assert_eq!(hx.len(), prev.len(), "rescaled_chebyshev_combine_dot: length mismatch");
    assert_eq!(x.len(), prev.len(), "rescaled_chebyshev_combine_dot: length mismatch");
    assert_eq!(r0.len(), prev.len(), "rescaled_chebyshev_combine_dot: length mismatch");
    let mut acc = [0.0f64; 4];
    let split = prev.len() - prev.len() % 4;
    let (pc, pr) = prev.split_at_mut(split);
    let (hc, hr) = hx.split_at(split);
    let (xc, xr) = x.split_at(split);
    let (rc, rr) = r0.split_at(split);
    for (((ps, hs), xs), rs) in pc
        .chunks_exact_mut(4)
        .zip(hc.chunks_exact(4))
        .zip(xc.chunks_exact(4))
        .zip(rc.chunks_exact(4))
    {
        ps[0] = 2.0 * ((hs[0] - a_plus * xs[0]) * inv_a_minus) - ps[0];
        ps[1] = 2.0 * ((hs[1] - a_plus * xs[1]) * inv_a_minus) - ps[1];
        ps[2] = 2.0 * ((hs[2] - a_plus * xs[2]) * inv_a_minus) - ps[2];
        ps[3] = 2.0 * ((hs[3] - a_plus * xs[3]) * inv_a_minus) - ps[3];
        acc[0] += rs[0] * ps[0];
        acc[1] += rs[1] * ps[1];
        acc[2] += rs[2] * ps[2];
        acc[3] += rs[3] * ps[3];
    }
    let tail: f64 = rr
        .iter()
        .zip(pr.iter_mut())
        .zip(hr.iter().zip(xr))
        .map(|((&r, p), (&h, &xv))| {
            *p = 2.0 * ((h - a_plus * xv) * inv_a_minus) - *p;
            r * *p
        })
        .sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Accumulator width of the fused combine-and-dot kernels.
///
/// `Unrolled4` is the historical default: four partial sums reduced as
/// `(acc0 + acc1) + (acc2 + acc3) + tail`, bitwise identical to [`dot`].
/// `Unrolled8` doubles the independent FP chains — worth trying on wide
/// out-of-order cores where four chains leave FMA ports idle — but its
/// pairwise reduction associates differently, so the returned moments are
/// *not* bitwise equal to the 4-way kernels (they agree to rounding; the
/// error-budget test pins `1e-12` relative). The tuner may record it as a
/// hint, but it is only applied when explicitly selected
/// ([`set_kernel_variant`] / `KPM_KERNEL_VARIANT=unrolled8`), keeping the
/// default value family untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelVariant {
    /// Four-way unrolled reduction (default; the frozen value family).
    #[default]
    Unrolled4,
    /// Eight-way unrolled reduction (value-affecting; opt-in).
    Unrolled8,
}

impl KernelVariant {
    /// Stable lowercase name (`unrolled4` / `unrolled8`).
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Unrolled4 => "unrolled4",
            KernelVariant::Unrolled8 => "unrolled8",
        }
    }
}

impl std::str::FromStr for KernelVariant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "unrolled4" => Ok(KernelVariant::Unrolled4),
            "unrolled8" => Ok(KernelVariant::Unrolled8),
            other => {
                Err(format!("unknown kernel variant '{other}' (expected unrolled4|unrolled8)"))
            }
        }
    }
}

static KERNEL_VARIANT: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Sets the process-global fused-kernel variant (see [`KernelVariant`]).
pub fn set_kernel_variant(v: KernelVariant) {
    KERNEL_VARIANT.store(v as u8, std::sync::atomic::Ordering::Relaxed);
}

/// The fused-kernel variant in effect. Defaults to
/// [`KernelVariant::Unrolled4`]; the `KPM_KERNEL_VARIANT` environment
/// variable seeds it on first read.
pub fn kernel_variant() -> KernelVariant {
    static ENV_SEEDED: std::sync::Once = std::sync::Once::new();
    ENV_SEEDED.call_once(|| {
        if let Ok(raw) = std::env::var("KPM_KERNEL_VARIANT") {
            match raw.trim().parse::<KernelVariant>() {
                Ok(v) => set_kernel_variant(v),
                Err(e) => eprintln!("warning: ignoring KPM_KERNEL_VARIANT={raw:?}: {e}"),
            }
        }
    });
    match KERNEL_VARIANT.load(std::sync::atomic::Ordering::Relaxed) {
        1 => KernelVariant::Unrolled8,
        _ => KernelVariant::Unrolled4,
    }
}

/// Eight-way unrolled [`chebyshev_combine_dot`]. The in-place combine
/// stores are element-wise identical to the 4-way kernel; only the dot
/// reduction associates differently
/// (`((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7)) + tail`), so `prev` ends
/// bitwise equal while the returned moment agrees to rounding.
///
/// # Panics
/// Panics if the three slices differ in length.
pub fn chebyshev_combine_dot8(hx: &[f64], prev: &mut [f64], r0: &[f64]) -> f64 {
    assert_eq!(hx.len(), prev.len(), "chebyshev_combine_dot8: length mismatch");
    assert_eq!(r0.len(), prev.len(), "chebyshev_combine_dot8: length mismatch");
    let mut acc = [0.0f64; 8];
    let split = prev.len() - prev.len() % 8;
    let (pc, pr) = prev.split_at_mut(split);
    let (hc, hr) = hx.split_at(split);
    let (rc, rr) = r0.split_at(split);
    for ((ps, hs), rs) in pc.chunks_exact_mut(8).zip(hc.chunks_exact(8)).zip(rc.chunks_exact(8)) {
        for lane in 0..8 {
            ps[lane] = 2.0 * hs[lane] - ps[lane];
            acc[lane] += rs[lane] * ps[lane];
        }
    }
    let tail: f64 = rr
        .iter()
        .zip(pr.iter_mut())
        .zip(hr)
        .map(|((&r, p), &h)| {
            *p = 2.0 * h - *p;
            r * *p
        })
        .sum();
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Eight-way unrolled [`rescaled_chebyshev_combine_dot`]; same contract as
/// [`chebyshev_combine_dot8`] (identical stores, differently associated
/// dot).
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn rescaled_chebyshev_combine_dot8(
    hx: &[f64],
    x: &[f64],
    prev: &mut [f64],
    r0: &[f64],
    a_plus: f64,
    inv_a_minus: f64,
) -> f64 {
    assert_eq!(hx.len(), prev.len(), "rescaled_chebyshev_combine_dot8: length mismatch");
    assert_eq!(x.len(), prev.len(), "rescaled_chebyshev_combine_dot8: length mismatch");
    assert_eq!(r0.len(), prev.len(), "rescaled_chebyshev_combine_dot8: length mismatch");
    let mut acc = [0.0f64; 8];
    let split = prev.len() - prev.len() % 8;
    let (pc, pr) = prev.split_at_mut(split);
    let (hc, hr) = hx.split_at(split);
    let (xc, xr) = x.split_at(split);
    let (rc, rr) = r0.split_at(split);
    for (((ps, hs), xs), rs) in pc
        .chunks_exact_mut(8)
        .zip(hc.chunks_exact(8))
        .zip(xc.chunks_exact(8))
        .zip(rc.chunks_exact(8))
    {
        for lane in 0..8 {
            ps[lane] = 2.0 * ((hs[lane] - a_plus * xs[lane]) * inv_a_minus) - ps[lane];
            acc[lane] += rs[lane] * ps[lane];
        }
    }
    let tail: f64 = rr
        .iter()
        .zip(pr.iter_mut())
        .zip(hr.iter().zip(xr))
        .map(|((&r, p), (&h, &xv))| {
            *p = 2.0 * ((h - a_plus * xv) * inv_a_minus) - *p;
            r * *p
        })
        .sum();
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Variant-dispatched [`chebyshev_combine_dot`].
#[inline]
pub fn chebyshev_combine_dot_variant(
    variant: KernelVariant,
    hx: &[f64],
    prev: &mut [f64],
    r0: &[f64],
) -> f64 {
    match variant {
        KernelVariant::Unrolled4 => chebyshev_combine_dot(hx, prev, r0),
        KernelVariant::Unrolled8 => chebyshev_combine_dot8(hx, prev, r0),
    }
}

/// Variant-dispatched [`rescaled_chebyshev_combine_dot`].
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn rescaled_chebyshev_combine_dot_variant(
    variant: KernelVariant,
    hx: &[f64],
    x: &[f64],
    prev: &mut [f64],
    r0: &[f64],
    a_plus: f64,
    inv_a_minus: f64,
) -> f64 {
    match variant {
        KernelVariant::Unrolled4 => {
            rescaled_chebyshev_combine_dot(hx, x, prev, r0, a_plus, inv_a_minus)
        }
        KernelVariant::Unrolled8 => {
            rescaled_chebyshev_combine_dot8(hx, x, prev, r0, a_plus, inv_a_minus)
        }
    }
}

/// [`rescale_inplace`] fused with [`chebyshev_combine_inplace`]:
/// `prev[i] = 2 * ((hx[i] - a_plus * x[i]) * inv_a_minus) - prev[i]`.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn rescaled_chebyshev_combine_inplace(
    hx: &[f64],
    x: &[f64],
    prev: &mut [f64],
    a_plus: f64,
    inv_a_minus: f64,
) {
    assert_eq!(hx.len(), prev.len(), "rescaled_chebyshev_combine_inplace: length mismatch");
    assert_eq!(x.len(), prev.len(), "rescaled_chebyshev_combine_inplace: length mismatch");
    for ((p, &h), &xv) in prev.iter_mut().zip(hx).zip(x) {
        *p = 2.0 * ((h - a_plus * xv) * inv_a_minus) - *p;
    }
}

/// Copies `src` into `dst`.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Maximum absolute difference between two vectors; `inf` norm of `x - y`.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter().zip(y).fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_dot_is_bitwise_equal_to_combine_then_dot() {
        // Cover every residue class mod 4 so both the unrolled body and the
        // scalar tail are exercised.
        for n in 0..10usize {
            let hx: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.3).collect();
            let r0: Vec<f64> = (0..n).map(|i| (i as f64).cos() - 0.7).collect();
            let mut fused = (0..n).map(|i| 0.1 * i as f64 - 0.4).collect::<Vec<_>>();
            let mut unfused = fused.clone();
            let mu_fused = chebyshev_combine_dot(&hx, &mut fused, &r0);
            chebyshev_combine_inplace(&hx, &mut unfused);
            let mu_unfused = dot(&r0, &unfused);
            assert_eq!(fused, unfused, "n = {n}");
            assert_eq!(mu_fused.to_bits(), mu_unfused.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn unrolled8_stores_bitwise_and_dots_within_error_budget() {
        // The 8-way variants must leave `prev` bitwise identical to the
        // 4-way kernels (the combine is element-wise) and return a moment
        // within the documented 1e-12 relative error budget (the reduction
        // associates differently). Lengths cover every residue class mod 8.
        for n in (0..18usize).chain([128, 263]) {
            let hx: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.3).collect();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).cos()).collect();
            let r0: Vec<f64> = (0..n).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
            let base: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 - 0.4).collect();

            let (mut p4, mut p8) = (base.clone(), base.clone());
            let mu4 = chebyshev_combine_dot(&hx, &mut p4, &r0);
            let mu8 = chebyshev_combine_dot8(&hx, &mut p8, &r0);
            assert_eq!(p4, p8, "combine stores must be bitwise identical, n = {n}");
            let scale = mu4.abs().max(1.0);
            assert!((mu8 - mu4).abs() <= 1e-12 * scale, "n = {n}: {mu8} vs {mu4}");

            let (mut p4, mut p8) = (base.clone(), base.clone());
            let mu4 = rescaled_chebyshev_combine_dot(&hx, &x, &mut p4, &r0, 0.2, 0.5);
            let mu8 = rescaled_chebyshev_combine_dot8(&hx, &x, &mut p8, &r0, 0.2, 0.5);
            assert_eq!(p4, p8, "rescaled stores must be bitwise identical, n = {n}");
            let scale = mu4.abs().max(1.0);
            assert!((mu8 - mu4).abs() <= 1e-12 * scale, "n = {n}: {mu8} vs {mu4}");
        }
    }

    #[test]
    fn kernel_variant_parses_and_dispatches() {
        assert_eq!("unrolled4".parse::<KernelVariant>().unwrap(), KernelVariant::Unrolled4);
        assert_eq!("unrolled8".parse::<KernelVariant>().unwrap(), KernelVariant::Unrolled8);
        assert!("avx512".parse::<KernelVariant>().is_err());
        let hx = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r0 = [1.0, -1.0, 1.0, -1.0, 1.0];
        let mut a = [0.5; 5];
        let mut b = [0.5; 5];
        let via_variant = chebyshev_combine_dot_variant(KernelVariant::Unrolled4, &hx, &mut a, &r0);
        let direct = chebyshev_combine_dot(&hx, &mut b, &r0);
        assert_eq!(via_variant.to_bits(), direct.to_bits());
    }

    #[test]
    fn positive_override_rejects_zero_and_garbage() {
        assert_eq!(parse_positive_override("KPM_TEST", "128"), Some(128));
        assert_eq!(parse_positive_override("KPM_TEST", "  64 "), Some(64));
        assert_eq!(parse_positive_override("KPM_TEST", "0"), None);
        assert_eq!(parse_positive_override("KPM_TEST", "banana"), None);
        assert_eq!(parse_positive_override("KPM_TEST", ""), None);
        assert_eq!(parse_positive_override("KPM_TEST", "-3"), None);
    }

    #[test]
    fn dot_matches_naive_for_various_lengths() {
        // Exercise the unroll remainder handling: lengths 0..=9 cover every
        // residue class mod 4.
        for n in 0..10usize {
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let y: Vec<f64> = (0..n).map(|i| 2.0 - i as f64).collect();
            let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y) - naive).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        let x = [1.0, 0.0, 1.0, 0.0];
        let y = [0.0, 3.0, 0.0, -7.0];
        assert_eq!(dot(&x, &y), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn scale_and_shift() {
        let mut x = [1.0, -2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [0.5, -1.0, 2.0]);
        shift(1.0, &mut x);
        assert_eq!(x, [1.5, 0.0, 3.0]);
    }

    #[test]
    fn norm2_basics() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm2_does_not_overflow_for_huge_entries() {
        let big = 1e300;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-15);
    }

    #[test]
    fn chebyshev_combine_matches_formula() {
        let hx = [1.0, 2.0, 3.0];
        let prev = [0.5, 0.5, 0.5];
        let mut out = [0.0; 3];
        chebyshev_combine(&hx, &prev, &mut out);
        assert_eq!(out, [1.5, 3.5, 5.5]);

        let mut prev2 = prev;
        chebyshev_combine_inplace(&hx, &mut prev2);
        assert_eq!(prev2, out);
    }

    #[test]
    fn max_abs_diff_finds_worst_component() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.5, 2.0];
        assert_eq!(max_abs_diff(&x, &y), 1.0);
        assert_eq!(max_abs_diff(&x, &x), 0.0);
    }
}
