//! Property-based tests for the linear-algebra substrate.

use kpm_linalg::coo::CooMatrix;
use kpm_linalg::csr::CsrMatrix;
use kpm_linalg::dense::DenseMatrix;
use kpm_linalg::eigen::{jacobi_eigenvalues, tridiagonal_eigenvalues};
use kpm_linalg::gershgorin::{gershgorin_csr, gershgorin_dense};
use kpm_linalg::vecops;
use proptest::prelude::*;

/// A small finite f64 for matrix entries.
fn entry() -> impl Strategy<Value = f64> {
    prop_oneof![
        3 => -10.0..10.0f64,
        1 => Just(0.0),
    ]
}

/// Strategy producing a random sparse square matrix as triplets.
fn sparse_square(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (1..=max_n).prop_flat_map(|n| {
        let triplet = (0..n, 0..n, entry());
        (Just(n), proptest::collection::vec(triplet, 0..3 * n))
    })
}

fn build_pair(n: usize, triplets: &[(usize, usize, f64)]) -> (CsrMatrix, DenseMatrix) {
    let mut coo = CooMatrix::new(n, n);
    let mut dense = DenseMatrix::zeros(n, n);
    for &(i, j, v) in triplets {
        coo.push(i, j, v).unwrap();
        dense.set(i, j, dense.get(i, j) + v);
    }
    (coo.to_csr(), dense)
}

proptest! {
    #[test]
    fn coo_to_csr_preserves_entries((n, triplets) in sparse_square(12)) {
        let (csr, dense) = build_pair(n, &triplets);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((csr.get(i, j) - dense.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spmv_matches_dense_matvec((n, triplets) in sparse_square(12), seed in 0u64..1000) {
        let (csr, dense) = build_pair(n, &triplets);
        let x: Vec<f64> = (0..n).map(|i| ((seed as f64 + i as f64) * 0.7).sin()).collect();
        let mut ys = vec![0.0; n];
        let mut yd = vec![0.0; n];
        csr.spmv(&x, &mut ys);
        dense.matvec(&x, &mut yd);
        prop_assert!(vecops::max_abs_diff(&ys, &yd) < 1e-9);
    }

    #[test]
    fn csr_transpose_is_involution((n, triplets) in sparse_square(10)) {
        let (csr, _) = build_pair(n, &triplets);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn csr_structural_invariants_hold((n, triplets) in sparse_square(12)) {
        let (csr, _) = build_pair(n, &triplets);
        // Reconstruct through from_raw: must validate cleanly.
        let rebuilt = CsrMatrix::from_raw(
            csr.nrows(), csr.ncols(),
            csr.row_ptr().to_vec(), csr.col_idx().to_vec(), csr.values().to_vec(),
        );
        prop_assert!(rebuilt.is_ok());
    }

    #[test]
    fn gershgorin_contains_spectrum((n, triplets) in sparse_square(8)) {
        // Symmetrize so Jacobi applies.
        let mut coo = CooMatrix::new(n, n);
        for &(i, j, v) in &triplets {
            coo.push_symmetric(i, j, v).unwrap();
        }
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        let b_csr = gershgorin_csr(&csr);
        let b_dense = gershgorin_dense(&dense);
        prop_assert!((b_csr.lower - b_dense.lower).abs() < 1e-9);
        prop_assert!((b_csr.upper - b_dense.upper).abs() < 1e-9);
        let eig = jacobi_eigenvalues(&dense).unwrap();
        for &e in &eig {
            prop_assert!(b_dense.padded(1e-12).contains(e),
                "eigenvalue {} outside ({}, {})", e, b_dense.lower, b_dense.upper);
        }
    }

    #[test]
    fn jacobi_eigenvalue_sum_equals_trace((n, triplets) in sparse_square(8)) {
        let mut coo = CooMatrix::new(n, n);
        for &(i, j, v) in &triplets {
            coo.push_symmetric(i, j, v).unwrap();
        }
        let dense = coo.to_csr().to_dense();
        let eig = jacobi_eigenvalues(&dense).unwrap();
        let sum: f64 = eig.iter().sum();
        let scale = dense.frobenius_norm().max(1.0);
        prop_assert!((sum - dense.trace()).abs() < 1e-9 * scale,
            "trace {} vs eigenvalue sum {}", dense.trace(), sum);
    }

    #[test]
    fn tridiagonal_ql_matches_jacobi(
        n in 1usize..12,
        seed in 0u64..500,
    ) {
        let diag: Vec<f64> = (0..n).map(|i| ((seed + i as u64) as f64 * 0.77).sin() * 3.0).collect();
        let off: Vec<f64> = (0..n.saturating_sub(1))
            .map(|i| ((seed + 31 + i as u64) as f64 * 1.3).cos() * 2.0)
            .collect();
        let ql = tridiagonal_eigenvalues(&diag, &off).unwrap();
        let dense = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j { diag[i] } else if i.abs_diff(j) == 1 { off[i.min(j)] } else { 0.0 }
        });
        let jc = jacobi_eigenvalues(&dense).unwrap();
        for (a, b) in ql.iter().zip(&jc) {
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
    }

    #[test]
    fn dot_is_bilinear(
        x in proptest::collection::vec(-5.0..5.0f64, 1..40),
        alpha in -3.0..3.0f64,
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let scaled: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        let lhs = vecops::dot(&scaled, &y);
        let rhs = alpha * vecops::dot(&x, &y);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }

    #[test]
    fn norm2_triangle_inequality(
        x in proptest::collection::vec(-5.0..5.0f64, 1..40),
    ) {
        let y: Vec<f64> = x.iter().rev().copied().collect();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!(vecops::norm2(&sum) <= vecops::norm2(&x) + vecops::norm2(&y) + 1e-12);
    }

    #[test]
    fn chebyshev_combine_inplace_matches_out_of_place(
        hx in proptest::collection::vec(-5.0..5.0f64, 1..40),
    ) {
        let prev: Vec<f64> = hx.iter().map(|v| v * 0.3 - 1.0).collect();
        let mut out = vec![0.0; hx.len()];
        vecops::chebyshev_combine(&hx, &prev, &mut out);
        let mut inplace = prev.clone();
        vecops::chebyshev_combine_inplace(&hx, &mut inplace);
        prop_assert_eq!(out, inplace);
    }

    #[test]
    fn rescaled_op_spectrum_in_unit_interval((n, triplets) in sparse_square(8)) {
        use kpm_linalg::op::RescaledOp;
        let mut coo = CooMatrix::new(n, n);
        for &(i, j, v) in &triplets {
            coo.push_symmetric(i, j, v).unwrap();
        }
        let dense = coo.to_csr().to_dense();
        let b = gershgorin_dense(&dense).padded(0.01);
        if b.a_minus() == 0.0 { return Ok(()); }
        let r = RescaledOp::new(dense.clone(), b.a_plus(), b.a_minus());
        let eig = jacobi_eigenvalues(&dense).unwrap();
        for &e in &eig {
            let x = r.to_rescaled(e);
            prop_assert!((-1.0..=1.0).contains(&x), "rescaled eigenvalue {} escaped", x);
        }
    }
}
