//! Kubo–Greenwood conductivity of a disordered chain by 2D KPM — the
//! `O(N^2 D)` workload that modern KPM codes (KITE et al.) exist to
//! accelerate, built on this crate's double-moment engine.
//!
//! ```text
//! cargo run --release --example conductivity
//! ```

use kpm_suite::kpm::kubo::{conductivity, double_moments, velocity_operator};
use kpm_suite::kpm::prelude::*;
use kpm_suite::kpm::rescale::Boundable;
use kpm_suite::lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_suite::linalg::op::RescaledOp;

fn main() {
    let l = 256;
    let positions: Vec<f64> = (0..l).map(|i| i as f64).collect();
    println!("Kubo-Greenwood sigma(E) on a {l}-site chain, N = 32 double moments\n");
    println!("{:>6} {:>12} {:>12} {:>12}", "E", "W=0", "W=2", "W=6");

    let mut curves = Vec::new();
    for &w_dis in &[0.0f64, 2.0, 6.0] {
        let onsite = if w_dis == 0.0 {
            OnSite::Uniform(0.0)
        } else {
            OnSite::Disorder { width: w_dis, seed: 5 }
        };
        let h = TightBinding::new(HypercubicLattice::chain(l, Boundary::Periodic), 1.0, onsite)
            .build_csr();
        let bounds = h.spectral_bounds(BoundsMethod::Gershgorin).unwrap().padded(0.01);
        let hs = RescaledOp::new(&h, bounds.a_plus(), bounds.a_minus());
        let v = velocity_operator(&h, &positions, Some(l as f64));

        let params = KpmParams::new(32).with_random_vectors(8, 4).with_seed(13);
        let start = std::time::Instant::now();
        let mu = double_moments(&hs, &v, &params).expect("double moments");
        let elapsed = start.elapsed();

        let xs: Vec<f64> = (-9..=9).map(|i| i as f64 * 0.1).collect();
        let sigma = conductivity(&mu, KernelType::Jackson, &xs);
        eprintln!("(W = {w_dis}: {} double moments in {elapsed:.2?})", 32 * 32);
        curves.push((xs, sigma));
    }

    let (xs, _) = &curves[0];
    for (i, &x) in xs.iter().enumerate() {
        // Rescaled x maps near-linearly to energy here (band ~ [-2, 2]).
        println!(
            "{:>6.2} {:>12.4} {:>12.4} {:>12.4}",
            x * 2.0,
            curves[0].1[i],
            curves[1].1[i],
            curves[2].1[i]
        );
    }
    println!(
        "\nsigma is largest in the clean chain and shrinks with disorder at\n\
         every energy — Anderson localization seen through transport. Each\n\
         column costs O(N^2 D) per random vector; the DoS costs O(N D)."
    );
}
