//! Anderson disorder on the cubic lattice: how the DoS evolves with
//! disorder strength `W` — the standard condensed-matter application the
//! paper's introduction motivates (KPM handles disordered systems that
//! exact diagonalization cannot reach).
//!
//! Also demonstrates the local DoS: at strong disorder, different sites
//! develop very different spectral weight (the precursor to Anderson
//! localization).
//!
//! ```text
//! cargo run --release --example anderson_disorder
//! ```

use kpm_suite::kpm::prelude::*;
use kpm_suite::lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};

fn main() {
    let lattice = HypercubicLattice::cubic(8, 8, 8, Boundary::Periodic);
    println!("8x8x8 cubic lattice, D = {}\n", lattice.num_sites());

    for &w in &[0.0f64, 4.0, 12.0] {
        let tb = TightBinding::new(
            lattice.clone(),
            1.0,
            if w == 0.0 { OnSite::Uniform(0.0) } else { OnSite::Disorder { width: w, seed: 11 } },
        );
        let h = tb.build_csr();
        let params = KpmParams::new(256).with_random_vectors(8, 4).with_seed(3);
        let dos = DosEstimator::new(params.clone()).compute(&h).expect("KPM");

        // Band width: clean band is [-6, 6]; disorder pushes Lifshitz
        // tails out to +-(6 + W/2).
        let weight_outside_clean_band = dos.integrate() - dos.integrate_range(-6.0, 6.0);
        println!("W = {w:>4.1}:");
        println!(
            "  band support     : [{:.2}, {:.2}]",
            dos.energies[0],
            dos.energies.last().unwrap()
        );
        println!("  weight outside [-6, 6]: {weight_outside_clean_band:.4}");
        println!(
            "  peak rho         : {:.4} at E = {:.2}",
            {
                let m = dos.rho.iter().cloned().fold(0.0f64, f64::max);
                m
            },
            dos.peak_energy()
        );

        // LDoS spread across sites at the band centre: a proxy for how
        // inhomogeneous the system has become.
        let mut values = Vec::new();
        for site in [0usize, 111, 333] {
            let ldos = LdosEstimator::new(params.clone(), site).compute(&h).expect("LDoS");
            values.push(ldos.value_at(0.0).unwrap_or(0.0));
        }
        let spread = values.iter().cloned().fold(0.0f64, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("  LDoS(E=0) at 3 sites: {values:.3?}  (spread {spread:.3})\n");
    }

    println!(
        "Disorder broadens the band, washes out the van Hove structure and\n\
         makes the local DoS site-dependent — all with O(N D) work per\n\
         disorder realization, which is exactly why the paper wants KPM fast."
    );
}
