//! The paper's Fig. 6 as an application: DoS of the 10×10×10 cubic lattice
//! at two truncation orders, showing the resolution/cost trade-off, and a
//! cross-check against the analytic band edges.
//!
//! ```text
//! cargo run --release --example cubic_lattice_dos
//! ```

use kpm_suite::kpm::prelude::*;
use kpm_suite::lattice::paper_cubic_hamiltonian;

fn main() {
    let h = paper_cubic_hamiltonian();

    for &n in &[256usize, 512] {
        let params =
            KpmParams::new(n).with_random_vectors(14, 4).with_grid_points(1024).with_seed(6);
        let start = std::time::Instant::now();
        let dos = DosEstimator::new(params).compute(&h).expect("KPM");
        let elapsed = start.elapsed();

        // The simple-cubic tight-binding band is [-6, 6]; most weight sits
        // in |E| < 6, and the DoS is symmetric.
        let inside = dos.integrate_range(-6.0, 6.0);
        let left = dos.integrate_range(dos.energies[0], 0.0);

        println!("N = {n}: computed in {elapsed:.2?}");
        println!("  integral           : {:.4}", dos.integrate());
        println!("  weight inside [-6,6]: {inside:.4}");
        println!("  weight below E = 0  : {left:.4} (symmetry => ~0.5)");
        println!(
            "  energy resolution   : {:.4} (Jackson, pi * half-bandwidth / N)",
            std::f64::consts::PI * dos.a_minus / n as f64
        );

        // Resolution check: sharper N resolves larger total variation.
        let tv: f64 = dos.rho.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        println!("  total variation     : {tv:.4} (grows with N)\n");
    }

    println!(
        "Higher N sharpens the DoS at linearly growing cost — the paper's\n\
         Fig. 6 trade-off. Run `cargo run -p kpm-bench --bin repro -- fig6`\n\
         for the full two-curve comparison and CSV output."
    );
}
