//! Quantum dynamics *on the simulated device*, with the per-kernel profile
//! a `nvprof`-style tool would show — the "simulate various quantum states"
//! future the paper's conclusion sketches, built on the same substrate as
//! the moment engine.
//!
//! ```text
//! cargo run --release --example device_dynamics
//! ```

use kpm_suite::kpm::propagate::{ComplexState, Propagator};
use kpm_suite::kpm::rescale::Boundable;
use kpm_suite::kpm::BoundsMethod;
use kpm_suite::lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_suite::stream::DevicePropagator;
use kpm_suite::streamsim::GpuSpec;

fn main() {
    // A 2D lattice with moderate disorder.
    let h = TightBinding::new(
        HypercubicLattice::square(24, 24, Boundary::Periodic),
        1.0,
        OnSite::Disorder { width: 1.5, seed: 8 },
    )
    .build_csr();
    let d = h.nrows();
    println!("2D lattice, D = {d}; evolving a centre-site state on the simulated C2050\n");

    let mut re = vec![0.0; d];
    re[d / 2] = 1.0;
    let psi0 = ComplexState::from_real(re);

    // Device evolution.
    let mut dev_prop = DevicePropagator::new(GpuSpec::tesla_c2050(), &h, 1e-10).expect("device");
    let mut psi = psi0.clone();
    let (steps, dt) = (4usize, 2.0f64);
    for _ in 0..steps {
        psi = dev_prop.evolve(&psi, dt).expect("evolve");
    }
    println!(
        "after t = {}: norm = {:.10}, modeled device time = {:.1} ms",
        steps as f64 * dt,
        psi.norm_sqr(),
        dev_prop.elapsed().as_secs_f64() * 1e3
    );

    // Host reference for the same evolution.
    let bounds = h.spectral_bounds(BoundsMethod::Gershgorin).expect("bounds");
    let host = Propagator::new(&h, bounds, 1e-10).expect("host");
    let mut href = psi0;
    for _ in 0..steps {
        href = host.evolve(&href, dt);
    }
    let worst = psi
        .re
        .iter()
        .zip(&href.re)
        .chain(psi.im.iter().zip(&href.im))
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |device - host| = {worst:.2e}\n");

    // The device-side profile.
    println!(
        "{:<16} {:>9} {:>12} {:>14} {:>14}",
        "kernel", "launches", "time (ms)", "GFLOP", "DRAM (MB)"
    );
    for s in dev_prop.device().kernel_summaries() {
        println!(
            "{:<16} {:>9} {:>12.3} {:>14.3} {:>14.2}",
            s.name,
            s.launches,
            s.total_time.as_secs_f64() * 1e3,
            s.flops as f64 / 1e9,
            s.dram_bytes as f64 / 1e6
        );
    }
    println!(
        "\nEach Chebyshev term costs two cheb_step launches (split re/im) and\n\
         up to two axpy accumulations; the Bessel tail truncates the series\n\
         automatically once |2 J_n| drops below tolerance."
    );
}
