//! Quickstart: density of states of the paper's 10×10×10 cubic lattice in
//! a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kpm_suite::kpm::prelude::*;
use kpm_suite::lattice::paper_cubic_hamiltonian;

fn main() {
    // The Hamiltonian the paper evaluates: sparse, symmetric, 1000x1000,
    // seven stored entries per row (zero diagonal + six -1 hoppings).
    let h = paper_cubic_hamiltonian();
    println!(
        "Hamiltonian: {} x {}, {} stored entries ({} per row)",
        h.nrows(),
        h.ncols(),
        h.nnz(),
        h.nnz() / h.nrows()
    );

    // KPM with N = 256 moments, R = 14 random vectors x S = 4 realization
    // sets, Jackson kernel, Gershgorin rescaling — the paper's pipeline.
    let params = KpmParams::new(256).with_random_vectors(14, 4).with_seed(42);
    let dos = DosEstimator::new(params).compute(&h).expect("KPM run");

    println!("DoS integral (should be ~1): {:.4}", dos.integrate());
    println!("band: [{:.3}, {:.3}]", dos.energies[0], dos.energies.last().unwrap());
    println!("peak density at E = {:.3}", dos.peak_energy());

    // A coarse textual profile of rho(E).
    println!("\n rho(E) across the band:");
    let max_rho = dos.rho.iter().cloned().fold(0.0f64, f64::max);
    for i in (0..dos.len()).step_by(dos.len() / 24) {
        let bar = "#".repeat((dos.rho[i] / max_rho * 50.0).round() as usize);
        println!("{:>7.2} | {bar}", dos.energies[i]);
    }
}
