//! The paper's experiment in miniature: run the KPM on the CPU reference
//! and on the simulated Tesla C2050, verify the moments agree, and show
//! the modeled time breakdown plus the paper-scale speedup estimates.
//!
//! ```text
//! cargo run --release --example gpu_vs_cpu
//! ```

use kpm_suite::kpm::moments::stochastic_moments;
use kpm_suite::kpm::prelude::*;
use kpm_suite::kpm::rescale::{rescale, Boundable};
use kpm_suite::lattice::paper_cubic_hamiltonian;
use kpm_suite::stream::{Mapping, StreamKpmEngine};
use kpm_suite::streamsim::GpuSpec;

fn main() {
    let h = paper_cubic_hamiltonian();
    // Reduced realization load so the functional simulation stays quick;
    // the modeled times below are evaluated at the paper's full scale.
    let params = KpmParams::new(128).with_random_vectors(14, 2).with_seed(77);

    // --- CPU reference ---
    let bounds = h.spectral_bounds(params.bounds).expect("bounds");
    let rescaled = rescale(&h, bounds.padded(params.padding), 0.0).expect("rescale");
    let t = std::time::Instant::now();
    let cpu = stochastic_moments(&rescaled, &params);
    println!("CPU reference: {} moments in {:.2?}", cpu.mean.len(), t.elapsed());

    // --- Simulated GPU ---
    let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let t = std::time::Instant::now();
    let gpu = engine.compute_moments_csr(&h, &params).expect("GPU run");
    println!("Simulated GPU (functional layer): {:.2?} host wall-clock", t.elapsed());

    // --- Verify agreement ---
    let worst =
        cpu.mean.iter().zip(&gpu.moments.mean).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("max |mu_cpu - mu_gpu| = {worst:.2e} (same random streams, same recursion)\n");

    // --- Modeled time breakdown (device clock, not wall clock) ---
    let tb = gpu.time;
    println!("modeled C2050 time breakdown for this run:");
    println!("  setup      {:>10.3} ms", tb.setup.as_secs_f64() * 1e3);
    println!("  upload     {:>10.3} ms", tb.upload.as_secs_f64() * 1e3);
    println!("  generation {:>10.3} ms", tb.generation.as_secs_f64() * 1e3);
    println!("  reduction  {:>10.3} ms", tb.reduction.as_secs_f64() * 1e3);
    println!("  download   {:>10.3} ms", tb.download.as_secs_f64() * 1e3);
    println!("  total      {:>10.3} ms", tb.total().as_secs_f64() * 1e3);
    println!(
        "  peak device memory: {:.1} MB of {:.0} GB\n",
        gpu.peak_device_bytes as f64 / 1e6,
        engine.device().spec().global_mem_bytes as f64 / 1e9
    );

    // --- Paper-scale estimates: both mappings ---
    println!("paper-scale estimates (S*R = 1792, N = 1024, Fig. 5 workload):");
    for (label, mapping) in [
        ("thread-per-realization (paper)", Mapping::ThreadPerRealization),
        ("block-per-realization (ours)  ", Mapping::BlockPerRealization),
    ] {
        let e = StreamKpmEngine::new(GpuSpec::tesla_c2050()).with_mapping(mapping);
        let shape = e.shape_for(1000, 7000, false, 1024, 1792);
        // Overlap-off event pipeline == the retired analytic estimate.
        let modeled = kpm_suite::streamsim::MomentRunPlan::new(shape)
            .with_overlap(false)
            .total(e.device().spec(), 0.2);
        println!("  {label}: {:.2} s", modeled.as_secs_f64());
    }
    println!("\nRun `cargo run -p kpm-bench --bin repro -- all` for the figures.");
}
