//! Graphene: the honeycomb lattice DoS with its Dirac point, computed by
//! KPM at a system size (2 × 96 × 96 = 18,432 sites) far beyond what the
//! exact diagonalization used for validation could touch — which is the
//! paper's whole argument for the KPM.
//!
//! ```text
//! cargo run --release --example graphene_dos
//! ```

use kpm_suite::kpm::prelude::*;
use kpm_suite::kpm::thermal;
use kpm_suite::lattice::{Boundary, HoneycombLattice};

fn main() {
    let lat = HoneycombLattice::new(96, 96, Boundary::Periodic);
    let h = lat.hamiltonian(1.0);
    println!(
        "graphene sheet: {} sites, {} hoppings (KPM cost is linear in both)",
        lat.num_sites(),
        h.nnz() / 2
    );

    let start = std::time::Instant::now();
    let params = KpmParams::new(512).with_random_vectors(8, 2).with_grid_points(2048).with_seed(19);
    let dos = DosEstimator::new(params).compute(&h).expect("KPM");
    println!("DoS in {:.2?}; integral = {:.4}\n", start.elapsed(), dos.integrate());

    // Hallmarks of the graphene band structure:
    let dirac = dos.value_at(0.0).unwrap();
    let van_hove = dos.value_at(1.0).unwrap();
    let shoulder = dos.value_at(2.0).unwrap();
    println!("rho(0)  = {dirac:.4}   (Dirac point: vanishes as |E|)");
    println!("rho(+-1) = {van_hove:.4}   (van Hove singularity: band maximum)");
    println!("rho(2)  = {shoulder:.4}");
    assert!(van_hove > 4.0 * dirac, "van Hove must tower over the Dirac point");

    // Linear DoS near the Dirac point: rho(E) ~ |E| / (sqrt(3) pi) per site
    // (2 atoms/cell normalization handled by the lattice).
    println!("\nlinearity near the Dirac point (rho/|E| should be ~constant):");
    for &e in &[0.2, 0.3, 0.4, 0.5] {
        let r = dos.value_at(e).unwrap();
        println!("  E = {e:.1}: rho = {r:.4}, rho/|E| = {:.4}", r / e);
    }

    // Thermodynamics from the same DoS: undoped graphene is half filled
    // with mu = 0 by particle-hole symmetry.
    let mu = thermal::chemical_potential(&dos, 0.5, 0.05).expect("mu");
    println!("\nchemical potential at half filling, T = 0.05: mu = {mu:.4} (symmetry: 0)");
    let cv_graphene = thermal::specific_heat(&dos, 0.0, 0.1, 0.02);
    println!(
        "electronic specific heat at T = 0.1: {cv_graphene:.5} (suppressed by the Dirac point)"
    );
}
