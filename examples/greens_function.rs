//! Green's functions from KPM moments — the "Green's functions for
//! electrons" the paper's introduction names as the other key observable.
//!
//! Computes the retarded Green's function of a 1D chain, checks the exact
//! sum rule, and shows how the Lorentz kernel keeps `Im G <= 0`
//! (causality) where the raw Dirichlet truncation violates it.
//!
//! ```text
//! cargo run --release --example greens_function
//! ```

use kpm_suite::kpm::green;
use kpm_suite::kpm::moments::{exact_moments, stochastic_moments};
use kpm_suite::kpm::prelude::*;
use kpm_suite::kpm::rescale::{rescale, Boundable};
use kpm_suite::lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};

fn main() {
    // 1D chain: DoS has the textbook 1/sqrt band-edge divergences.
    let tb = TightBinding::new(
        HypercubicLattice::chain(512, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    );
    let h = tb.build_csr();
    let params = KpmParams::new(512).with_random_vectors(8, 4).with_seed(12);

    let bounds = h.spectral_bounds(params.bounds).expect("bounds").padded(params.padding);
    let rescaled = rescale(&h, bounds, 0.0).expect("rescale");
    let stats = stochastic_moments(&rescaled, &params);

    let energies: Vec<f64> = (-190..=190).map(|i| i as f64 * 0.01).collect();
    let g = green::evaluate(
        &stats.mean,
        KernelType::Lorentz { lambda: 4.0 },
        &energies,
        bounds.a_plus(),
        bounds.a_minus(),
    )
    .expect("Green's function");

    // Causality: Im G(omega) <= 0 everywhere for the retarded function.
    let max_im = g.values.iter().map(|v| v.im).fold(f64::NEG_INFINITY, f64::max);
    println!("max Im G = {max_im:.3e}  (must be <= 0: retarded/causal)");

    // Partial sum rule: A = -Im G / pi integrated over the window
    // [-1.9, 1.9] must match the analytic chain DoS weight
    // (2/pi) asin(omega/2) evaluated at the window edge — the band-edge
    // divergences keep the remaining ~20% outside the window.
    let a = g.spectral_function();
    let integral: f64 = energies
        .windows(2)
        .zip(a.windows(2))
        .map(|(we, wa)| 0.5 * (wa[0] + wa[1]) * (we[1] - we[0]))
        .sum();
    let analytic = 2.0 / std::f64::consts::PI * (1.9f64 / 2.0).asin() * 2.0 / 2.0;
    println!("partial sum rule over [-1.9, 1.9]: {integral:.4} (analytic: {analytic:.4})");

    // Compare against the exact band-structure moments.
    let exact_eigs: Vec<f64> = (0..512)
        .map(|k| -2.0 * (2.0 * std::f64::consts::PI * k as f64 / 512.0).cos())
        .map(|e| (e - bounds.a_plus()) / bounds.a_minus())
        .collect();
    let exact = exact_moments(&exact_eigs, 32);
    let worst = exact.iter().zip(&stats.mean).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    let expected_noise = 1.0 / ((params.total_realizations() * 512) as f64).sqrt();
    println!(
        "stochastic vs analytic moments (first 32): max diff {worst:.2e} \
         (stochastic scale ~{expected_noise:.1e})"
    );

    // Print Re/Im G at a few energies.
    println!("\n  omega      Re G       Im G       A(omega)");
    for &probe in &[-1.8, -1.0, 0.0, 1.0, 1.8] {
        let idx = energies.iter().position(|&e| (e - probe).abs() < 5e-3).expect("grid");
        println!(
            "{:>7.2}  {:>9.4}  {:>9.4}  {:>9.4}",
            probe, g.values[idx].re, g.values[idx].im, a[idx]
        );
    }
    println!(
        "\nThe 1D chain's A(omega) shows the band-edge van Hove divergences\n\
         smoothed on the Lorentz scale lambda/N — the analyticity-preserving\n\
         trade-off Green's-function KPM makes."
    );
}
