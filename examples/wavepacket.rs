//! Quantum dynamics with the Chebyshev propagator: a wavepacket spreading
//! ballistically on a clean chain versus freezing on a strongly disordered
//! one (Anderson localization in the time domain).
//!
//! Same Chebyshev recursion as the DoS, same Hamiltonians — this is the
//! "various quantum states" simulation the paper's conclusion envisions
//! accelerating.
//!
//! ```text
//! cargo run --release --example wavepacket
//! ```

use kpm_suite::kpm::propagate::{ComplexState, Propagator};
use kpm_suite::kpm::rescale::Boundable;
use kpm_suite::lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};

/// Root-mean-square spread of a density profile around its centre.
fn rms_spread(density: &[f64]) -> f64 {
    let total: f64 = density.iter().sum();
    let mean: f64 = density.iter().enumerate().map(|(i, &p)| i as f64 * p).sum::<f64>() / total;
    let var: f64 =
        density.iter().enumerate().map(|(i, &p)| (i as f64 - mean).powi(2) * p).sum::<f64>()
            / total;
    var.sqrt()
}

fn main() {
    let l = 400;
    for &(label, w) in &[("clean chain      ", 0.0), ("disordered (W = 6)", 6.0)] {
        let tb = TightBinding::new(
            HypercubicLattice::chain(l, Boundary::Periodic),
            1.0,
            if w == 0.0 { OnSite::Uniform(0.0) } else { OnSite::Disorder { width: w, seed: 4 } },
        );
        let h = tb.build_csr();
        let bounds = h.spectral_bounds(kpm_suite::kpm::BoundsMethod::Gershgorin).expect("bounds");
        let prop = Propagator::new(&h, bounds, 1e-10).expect("propagator");

        // Start on the central site.
        let mut re = vec![0.0; l];
        re[l / 2] = 1.0;
        let mut psi = ComplexState::from_real(re);

        println!("{label}:");
        println!("    t    spread   norm");
        let dt = 10.0;
        for step in 0..=5 {
            let density = psi.density();
            println!(
                "  {:>5.0}  {:>7.2}  {:.6}",
                step as f64 * dt,
                rms_spread(&density),
                psi.norm_sqr()
            );
            if step < 5 {
                psi = prop.evolve(&psi, dt);
            }
        }
        println!();
    }
    println!(
        "The clean packet spreads ballistically (spread ~ 2t per unit time,\n\
         the chain's maximum group velocity); strong disorder pins it at a\n\
         finite localization length while the norm stays conserved to 1e-6."
    );
}
