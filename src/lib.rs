//! Umbrella crate for the KPM reproduction suite.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the README for the architecture overview.

pub use kpm;
pub use kpm_lattice as lattice;
pub use kpm_linalg as linalg;
pub use kpm_stream as stream;
pub use kpm_streamsim as streamsim;
