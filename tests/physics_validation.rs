//! Cross-crate physics validation: the extension modules (thermal,
//! spectral, dynamics, conductivity) must agree with each other and with
//! analytic results when run through the full lattice → KPM pipeline.

use kpm_suite::kpm::prelude::*;
use kpm_suite::kpm::propagate::{ComplexState, Propagator};
use kpm_suite::kpm::rescale::Boundable;
use kpm_suite::kpm::{spectral, thermal};
use kpm_suite::lattice::{Boundary, HoneycombLattice, HypercubicLattice, OnSite, TightBinding};
use kpm_suite::stream::DevicePropagator;
use kpm_suite::streamsim::GpuSpec;

/// Half filling of any particle-hole-symmetric lattice sits at mu = 0.
#[test]
fn half_filling_at_zero_mu_for_symmetric_lattices() {
    let cubic = TightBinding::new(
        HypercubicLattice::cubic(6, 6, 6, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .build_csr();
    let honeycomb = HoneycombLattice::new(8, 8, Boundary::Periodic).hamiltonian(1.0);
    for (name, h) in [("cubic", cubic), ("honeycomb", honeycomb)] {
        let params = KpmParams::new(128).with_random_vectors(8, 4).with_seed(1);
        let dos = DosEstimator::new(params).compute(&h).unwrap();
        // Filling at mu = 0 is exactly 1/2 by symmetry; this is the
        // well-conditioned statement (inverting to mu is ill-conditioned
        // at graphene's Dirac point, where the filling curve is flat).
        let n0 = thermal::filling(&dos, 0.0, 0.1);
        assert!((n0 - 0.5).abs() < 0.01, "{name}: n(mu=0) = {n0}");
    }
    // On the cubic lattice (finite DoS at E = 0) the inversion is sharp.
    let cubic2 = TightBinding::new(
        HypercubicLattice::cubic(6, 6, 6, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .build_csr();
    let params = KpmParams::new(128).with_random_vectors(8, 4).with_seed(1);
    let dos = DosEstimator::new(params).compute(&cubic2).unwrap();
    let mu = thermal::chemical_potential(&dos, 0.5, 0.1).unwrap();
    assert!(mu.abs() < 0.1, "cubic: mu = {mu}");
}

/// Next-nearest hopping shifts the half-filling chemical potential away
/// from zero (particle-hole symmetry broken), in the direction the band
/// asymmetry dictates.
#[test]
fn asymmetric_band_moves_chemical_potential() {
    let h = TightBinding::new(
        HypercubicLattice::chain(256, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .with_next_nearest(0.4)
    .build_csr();
    let params = KpmParams::new(256).with_random_vectors(8, 4).with_seed(2);
    let dos = DosEstimator::new(params).compute(&h).unwrap();
    let mu = thermal::chemical_potential(&dos, 0.5, 0.02).unwrap();
    // E_k = -2 cos k - 0.8 cos 2k: the median of the band moves off zero.
    assert!(mu.abs() > 0.05, "t' must shift mu, got {mu}");
}

/// Spectral-function peaks and the DoS must describe the same band: the
/// DoS-weighted mean energy equals the k-average of the A(k, omega) peaks.
#[test]
fn spectral_peaks_consistent_with_dos() {
    let l = 64;
    let h = TightBinding::new(
        HypercubicLattice::chain(l, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .build_csr();
    let params = KpmParams::new(128).with_grid_points(512);
    // All momenta: peaks sample E(k) over the Brillouin zone.
    let ks: Vec<usize> = (0..l).collect();
    let spectra = spectral::chain_spectral_function(&h, l, &ks, &params).unwrap();
    let mean_peak: f64 = spectra.iter().map(|s| s.peak()).sum::<f64>() / l as f64;
    // Band average of E(k) = -2 cos k over the BZ is 0.
    assert!(mean_peak.abs() < 0.05, "mean quasiparticle energy {mean_peak}");
}

/// Time evolution and the spectrum agree: the survival amplitude
/// `<psi(0)|psi(t)>` of a site state equals the Fourier transform of its
/// LDoS; at short times `1 - |<psi|psi(t)>|^2 ~ (Delta E)^2 t^2` with
/// `(Delta E)^2` the LDoS variance.
#[test]
fn short_time_decay_matches_ldos_variance() {
    let l = 128;
    let h = TightBinding::new(
        HypercubicLattice::chain(l, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .build_csr();
    // LDoS variance of a site state on the chain: <E^2> = 2 t^2 = 2.
    let bounds = h.spectral_bounds(BoundsMethod::Gershgorin).unwrap();
    let prop = Propagator::new(&h, bounds, 1e-12).unwrap();
    let mut re = vec![0.0; l];
    re[0] = 1.0;
    let psi0 = ComplexState::from_real(re);
    let dt = 0.05;
    let psi_t = prop.evolve(&psi0, dt);
    let (ov_re, ov_im) = psi0.overlap(&psi_t);
    let survival = ov_re * ov_re + ov_im * ov_im;
    let expect = 1.0 - 2.0 * dt * dt; // 1 - <E^2> t^2 with <E^2> = 2
    assert!(
        (survival - expect).abs() < 5e-4,
        "survival {survival} vs short-time expansion {expect}"
    );
}

/// The device propagator reproduces host dynamics on a 2D disordered
/// lattice (not just the chains its unit tests use).
#[test]
fn device_propagator_matches_host_on_2d_disorder() {
    let h = TightBinding::new(
        HypercubicLattice::square(8, 8, Boundary::Periodic),
        1.0,
        OnSite::Disorder { width: 2.0, seed: 12 },
    )
    .build_csr();
    let mut re = vec![0.0; 64];
    re[27] = 1.0;
    let psi = ComplexState::from_real(re);
    let t = 2.4;

    let bounds = h.spectral_bounds(BoundsMethod::Gershgorin).unwrap();
    let host = Propagator::new(&h, bounds, 1e-12).unwrap().evolve(&psi, t);
    let device =
        DevicePropagator::new(GpuSpec::tesla_c2050(), &h, 1e-12).unwrap().evolve(&psi, t).unwrap();
    for i in 0..64 {
        assert!(
            (host.re[i] - device.re[i]).abs() < 1e-9 && (host.im[i] - device.im[i]).abs() < 1e-9,
            "site {i}"
        );
    }
}

/// Graphene's DoS vanishes at the Dirac point and integrates to one —
/// through the full honeycomb pipeline at a size exact diagonalization
/// could not validate directly.
#[test]
fn graphene_dirac_point_through_full_pipeline() {
    let h = HoneycombLattice::new(48, 48, Boundary::Periodic).hamiltonian(1.0);
    let params = KpmParams::new(256).with_random_vectors(8, 2).with_seed(3);
    let dos = DosEstimator::new(params).compute(&h).unwrap();
    assert!((dos.integrate() - 1.0).abs() < 0.02);
    let dirac = dos.value_at(0.0).unwrap();
    let van_hove = dos.value_at(1.0).unwrap();
    assert!(dirac < 0.1 * van_hove, "Dirac {dirac} vs van Hove {van_hove}");
    // Particle-hole symmetry of the bipartite lattice.
    let lo = dos.integrate_range(dos.energies[0], 0.0);
    assert!((lo - 0.5).abs() < 0.02, "weight below 0: {lo}");
}
