//! The reproduction's central verification: the simulated-GPU engine and
//! the CPU reference compute the *same moments* across matrices, mappings,
//! layouts, and distributions — the property the paper asserts implicitly
//! by validating its CUDA port against the CPU version.

use kpm_suite::kpm::moments::{stochastic_moments, KpmParams, MomentStats};
use kpm_suite::kpm::prelude::*;
use kpm_suite::kpm::rescale::{rescale, Boundable};
use kpm_suite::lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_suite::linalg::CsrMatrix;
use kpm_suite::stream::{Mapping, StreamKpmEngine, VectorLayout};
use kpm_suite::streamsim::GpuSpec;

fn cpu_reference_csr(h: &CsrMatrix, params: &KpmParams) -> MomentStats {
    let bounds = h.spectral_bounds(params.bounds).unwrap();
    let rescaled = rescale(h, bounds.padded(params.padding), 0.0).unwrap();
    stochastic_moments(&rescaled, params)
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len());
    for (n, (x, y)) in a.iter().zip(b).enumerate() {
        let scale = 1.0 + x.abs();
        assert!((x - y).abs() < tol * scale, "{what}: mu_{n} {x} vs {y}");
    }
}

#[test]
fn equivalence_across_mappings_and_layouts() {
    let h = TightBinding::new(
        HypercubicLattice::cubic(3, 3, 3, Boundary::Periodic),
        1.0,
        OnSite::Disorder { width: 1.0, seed: 3 },
    )
    .build_csr();
    let params = KpmParams::new(24).with_random_vectors(4, 2).with_seed(17);
    let cpu = cpu_reference_csr(&h, &params);

    let configs = [
        (Mapping::ThreadPerRealization, VectorLayout::Interleaved),
        (Mapping::ThreadPerRealization, VectorLayout::Contiguous),
        (Mapping::BlockPerRealization, VectorLayout::Contiguous),
        (Mapping::BlockPerRealization, VectorLayout::Interleaved),
    ];
    for (mapping, layout) in configs {
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050())
            .with_mapping(mapping)
            .with_layout(layout)
            .with_block_size(16);
        let gpu = engine.compute_moments_csr(&h, &params).unwrap();
        assert_close(&cpu.mean, &gpu.moments.mean, 1e-9, &format!("{mapping:?}/{layout:?}"));
    }
}

#[test]
fn equivalence_across_distributions() {
    let h = TightBinding::new(
        HypercubicLattice::square(5, 5, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.1),
    )
    .build_csr();
    for dist in [Distribution::Rademacher, Distribution::Gaussian, Distribution::Uniform] {
        let params =
            KpmParams::new(16).with_random_vectors(3, 2).with_distribution(dist).with_seed(23);
        let cpu = cpu_reference_csr(&h, &params);
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let gpu = engine.compute_moments_csr(&h, &params).unwrap();
        assert_close(&cpu.mean, &gpu.moments.mean, 1e-9, &format!("{dist:?}"));
    }
}

#[test]
fn equivalence_on_dense_matrices() {
    let h = kpm_suite::lattice::dense_random_symmetric(40, 1.0, 55);
    let params = KpmParams::new(32).with_random_vectors(4, 2).with_seed(66);
    let bounds = h.spectral_bounds(params.bounds).unwrap();
    let rescaled = rescale(&h, bounds.padded(params.padding), 0.0).unwrap();
    let cpu = stochastic_moments(&rescaled, &params);
    let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let gpu = engine.compute_moments_dense(&h, &params).unwrap();
    assert_close(&cpu.mean, &gpu.moments.mean, 1e-9, "dense");
}

#[test]
fn equivalence_of_standard_errors() {
    // Not just the means: the per-realization spread must match too
    // (same per-realization mu~ values on both sides).
    let h = TightBinding::new(
        HypercubicLattice::chain(30, Boundary::Periodic),
        1.0,
        OnSite::Disorder { width: 3.0, seed: 2 },
    )
    .build_csr();
    let params = KpmParams::new(12)
        .with_random_vectors(4, 4)
        .with_distribution(Distribution::Gaussian)
        .with_seed(5);
    let cpu = cpu_reference_csr(&h, &params);
    let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let gpu = engine.compute_moments_csr(&h, &params).unwrap();
    assert_close(&cpu.std_err, &gpu.moments.std_err, 1e-8, "std_err");
    assert_eq!(cpu.samples, gpu.moments.samples);
}

#[test]
fn determinism_across_engine_instances() {
    let h = TightBinding::new(
        HypercubicLattice::cubic(3, 3, 3, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .store_zero_diagonal(true)
    .build_csr();
    let params = KpmParams::new(16).with_random_vectors(4, 2).with_seed(100);
    let run = |block: usize| {
        let mut e = StreamKpmEngine::new(GpuSpec::tesla_c2050()).with_block_size(block);
        e.compute_moments_csr(&h, &params).unwrap().moments.mean
    };
    // Same seed, different block sizes: identical per-realization work, so
    // identical sums (block size only regroups independent realizations).
    let a = run(8);
    let b = run(8);
    assert_eq!(a, b, "bitwise determinism for identical configs");
    let c = run(32);
    assert_close(&a, &c, 1e-12, "block-size independence");
}
