//! End-to-end integration: lattice construction → exact diagonalization →
//! KPM pipeline, validating the reproduction against ground truth across
//! crate boundaries.

use kpm_suite::kpm::moments::{exact_moments, stochastic_moments, KpmParams, Recursion};
use kpm_suite::kpm::prelude::*;
use kpm_suite::kpm::rescale::{rescale, Boundable};
use kpm_suite::lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_suite::linalg::eigen::jacobi_eigenvalues;

/// KPM moments of a real lattice Hamiltonian match the moments computed
/// from its exact spectrum within stochastic error.
#[test]
#[allow(clippy::needless_range_loop)] // index spans several arrays in assertions
fn lattice_moments_match_exact_diagonalization() {
    let tb = TightBinding::new(
        HypercubicLattice::square(6, 6, Boundary::Periodic),
        1.0,
        OnSite::Disorder { width: 2.0, seed: 8 },
    );
    let h = tb.build_csr();
    let params = KpmParams::new(24)
        .with_random_vectors(16, 8)
        .with_distribution(Distribution::Gaussian)
        .with_seed(44);
    let bounds = h.spectral_bounds(params.bounds).unwrap();
    let rescaled = rescale(&h, bounds.padded(params.padding), 0.0).unwrap();
    let stats = stochastic_moments(&rescaled, &params);

    let eig = jacobi_eigenvalues(&h.to_dense()).unwrap();
    let scaled: Vec<f64> = eig.iter().map(|&e| rescaled.to_rescaled(e)).collect();
    let exact = exact_moments(&scaled, 24);
    for n in 0..24 {
        let tol = 6.0 * stats.std_err[n] + 5e-3;
        assert!(
            (stats.mean[n] - exact[n]).abs() < tol,
            "mu_{n}: {} vs {} (se {})",
            stats.mean[n],
            exact[n],
            stats.std_err[n]
        );
    }
}

/// The full DoS pipeline reproduces the integrated spectral count of exact
/// diagonalization at several probe energies.
#[test]
fn dos_cumulative_matches_exact_counts() {
    let tb = TightBinding::new(
        HypercubicLattice::cubic(4, 4, 4, Boundary::Open),
        1.0,
        OnSite::Uniform(0.3),
    );
    let h = tb.build_csr();
    let d = h.nrows();
    let eig = jacobi_eigenvalues(&h.to_dense()).unwrap();

    let params = KpmParams::new(128).with_random_vectors(16, 8).with_seed(9);
    let dos = DosEstimator::new(params).compute(&h).unwrap();
    assert!((dos.integrate() - 1.0).abs() < 0.02);

    for probe in [-2.0, 0.0, 1.5] {
        let exact_frac = eig.iter().filter(|&&e| e < probe).count() as f64 / d as f64;
        let kpm_frac = dos.integrate_range(dos.energies[0], probe);
        assert!(
            (exact_frac - kpm_frac).abs() < 0.06,
            "probe {probe}: exact {exact_frac} vs kpm {kpm_frac}"
        );
    }
}

/// Doubling recursion gives the same DoS as the plain recursion through
/// the full pipeline.
#[test]
fn recursion_strategies_agree_end_to_end() {
    let h = kpm_suite::lattice::dense_random_symmetric(64, 1.0, 15);
    let base = KpmParams::new(64).with_random_vectors(8, 2).with_seed(31);
    let plain =
        DosEstimator::new(base.clone().with_recursion(Recursion::Plain)).compute(&h).unwrap();
    let doubled = DosEstimator::new(base.with_recursion(Recursion::Doubling)).compute(&h).unwrap();
    for (a, b) in plain.rho.iter().zip(&doubled.rho) {
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }
}

/// Lanczos bounds give the same physics as Gershgorin, with a narrower
/// rescaling window (better energy resolution at equal N).
#[test]
fn lanczos_bounds_pipeline_agrees_and_tightens() {
    // Disordered chain: the Gershgorin discs inflate by W/2 on every row
    // while the true spectral edge stays far inside, so the contained
    // Lanczos window is decisively narrower. (On a clean chain the
    // spectrum fills the discs to within the probe's safety cushion and
    // there is nothing to tighten.)
    let tb = TightBinding::new(
        HypercubicLattice::chain(64, Boundary::Open),
        1.0,
        OnSite::Disorder { width: 6.0, seed: 9 },
    );
    let h = tb.build_csr();
    let gersh = KpmParams::new(64).with_random_vectors(8, 4).with_seed(5);
    let lanc = gersh.clone().with_bounds(BoundsMethod::Lanczos { steps: 60 });

    let dos_g = DosEstimator::new(gersh).compute(&h).unwrap();
    let dos_l = DosEstimator::new(lanc).compute(&h).unwrap();
    assert!((dos_g.integrate() - 1.0).abs() < 0.03);
    assert!((dos_l.integrate() - 1.0).abs() < 0.03);
    assert!(
        dos_l.a_minus < dos_g.a_minus,
        "Lanczos window {} must be tighter than Gershgorin {}",
        dos_l.a_minus,
        dos_g.a_minus
    );
    // Same fraction of states below the band centre.
    let f_g = dos_g.integrate_range(dos_g.energies[0], 0.0);
    let f_l = dos_l.integrate_range(dos_l.energies[0], 0.0);
    assert!((f_g - f_l).abs() < 0.03, "{f_g} vs {f_l}");
}

/// Chain DoS reproduces the analytic 1/(pi sqrt(4 - E^2)) law in the bulk.
#[test]
fn chain_dos_matches_analytic_band() {
    let tb = TightBinding::new(
        HypercubicLattice::chain(1024, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    );
    let h = tb.build_csr();
    let params = KpmParams::new(256).with_random_vectors(8, 4).with_seed(77);
    let dos = DosEstimator::new(params).compute(&h).unwrap();
    for probe in [-1.5, -0.5, 0.0, 0.8, 1.5] {
        let analytic = 1.0 / (std::f64::consts::PI * (4.0f64 - probe * probe).sqrt());
        let kpm = dos.value_at(probe).unwrap();
        assert!(
            (kpm - analytic).abs() < 0.15 * analytic + 0.01,
            "E = {probe}: kpm {kpm} vs analytic {analytic}"
        );
    }
}
