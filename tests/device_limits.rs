//! Integration tests for the simulated device's resource walls — the
//! paper's Sec. III-B-2 is entirely about fitting the working set into the
//! C2050's 3 GB, so the reproduction must actually enforce that wall.

use kpm_suite::kpm::prelude::*;
use kpm_suite::lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_suite::stream::StreamKpmEngine;
use kpm_suite::streamsim::{GpuSpec, SimError};

/// A workload whose four recursion vectors alone exceed 3 GB must be
/// rejected with `OutOfMemory` before any kernel runs.
#[test]
fn paper_memory_wall_is_enforced() {
    // D = 20^3 = 8000 sites; need realizations such that
    // 4 * 8 * D * SR > 3 GiB  =>  SR > 12,582.
    let h = TightBinding::new(
        HypercubicLattice::cubic(20, 20, 20, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .build_csr();
    let params = KpmParams::new(4).with_random_vectors(128, 128); // SR = 16384
    let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    match engine.compute_moments_csr(&h, &params) {
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("out of memory"), "unexpected error: {msg}");
        }
        Ok(_) => panic!("a > 3 GB working set must not fit the C2050"),
    }
    // The engine leaks nothing on the failure path is *not* guaranteed
    // (the run aborted mid-allocation), but a fresh engine still works:
    let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let ok = engine.compute_moments_csr(&h, &KpmParams::new(4).with_random_vectors(2, 1));
    assert!(ok.is_ok());
}

/// The paper's exact configuration fits comfortably (its Sec. III-B-2
/// arithmetic), with room to spare.
#[test]
fn paper_configuration_fits_with_headroom() {
    let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let shape = engine.shape_for(1000, 7000, false, 1024, 1792);
    let need = shape.device_bytes();
    let capacity = engine.device().spec().global_mem_bytes as u64;
    assert!(need < capacity / 10, "paper workload uses {need} of {capacity} bytes");
}

/// Block sizes beyond the device limit are rejected as invalid launches.
#[test]
fn oversized_block_rejected_at_launch() {
    let h = TightBinding::new(
        HypercubicLattice::chain(16, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .build_csr();
    // Under the block-per-realization mapping the block size is used
    // as-is (the paper's mapping clamps it to S*R instead).
    let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050())
        .with_mapping(kpm_suite::stream::Mapping::BlockPerRealization)
        .with_block_size(4096);
    let err =
        engine.compute_moments_csr(&h, &KpmParams::new(4).with_random_vectors(2, 1)).unwrap_err();
    assert!(err.to_string().contains("exceeds device limit"), "{err}");
}

/// Raw device: allocation failure is recoverable (no poisoning) and the
/// free-list keeps working afterwards.
#[test]
fn oom_is_recoverable_on_raw_device() {
    let mut dev = kpm_suite::streamsim::Device::new(GpuSpec::test_gpu());
    let cap_words = dev.spec().global_mem_bytes / 8;
    let half = dev.alloc(cap_words / 2).unwrap();
    match dev.alloc(cap_words) {
        Err(SimError::OutOfMemory { .. }) => {}
        other => panic!("expected OOM, got {other:?}"),
    }
    // Still usable.
    let quarter = dev.alloc(cap_words / 4).unwrap();
    dev.free(half).unwrap();
    dev.free(quarter).unwrap();
    assert_eq!(dev.mem_in_use(), 0);
}
