//! Integration tests pinned to the paper's exact claims and workloads.

use kpm_suite::kpm::prelude::*;
use kpm_suite::lattice::paper_cubic_hamiltonian;
use kpm_suite::linalg::gershgorin::gershgorin_csr;
use kpm_suite::stream::{Mapping, StreamKpmEngine};
use kpm_suite::streamsim::GpuSpec;

/// Section IV-A's workload claims, end to end.
#[test]
fn section_iv_a_workload() {
    let h = paper_cubic_hamiltonian();
    assert_eq!(h.nrows(), 1000, "Hamiltonian matrix sized in 1000x1000");
    assert!(h.is_symmetric(0.0), "sparse and symmetric");
    assert!((0..h.nrows()).all(|i| h.row_entries(i).count() == 7), "seven elements per row");
    let b = gershgorin_csr(&h);
    assert_eq!((b.lower, b.upper), (-6.0, 6.0), "Gershgorin band of the lattice");
}

/// Section III-B-2's memory accounting: the four recursion vectors plus
/// the partial-moment buffer, at the paper's S*R and N, fit the C2050's
/// 3 GB with the amounts the paper's formulas give.
#[test]
fn section_iii_b_2_memory_accounting() {
    let h = paper_cubic_hamiltonian();
    // Reduced SR so the functional run stays quick; check exact accounting.
    let params = KpmParams::new(64).with_random_vectors(8, 2).with_seed(1);
    let sr = params.total_realizations();
    let d = h.nrows();
    let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let run = engine.compute_moments_csr(&h, &params).unwrap();

    // Paper: vectors consume (number of realizations) x 4 x H_SIZE x 8 B.
    let vectors = 4 * 8 * d * sr;
    // Partial moments: N x S*R x 8 B, reduced N x 8 B.
    let partials = 8 * params.num_moments * sr + 8 * params.num_moments;
    // Matrix: CSR arrays stored as f64 words in the simulator.
    let matrix = 8 * (d + 1) + 8 * h.nnz() * 2;
    assert_eq!(run.peak_device_bytes, vectors + partials + matrix);

    // At the paper's full scale the same accounting stays inside 3 GB.
    let full_vectors = 4usize * 8 * 1000 * 1792;
    let full_partials = 8usize * 1024 * 1792;
    assert!(full_vectors + full_partials + matrix < 3 * 1024 * 1024 * 1024);
}

/// The paper's grid formula: RS / BLOCK_SIZE thread blocks; with the
/// paper's parameters that is exactly one block per SM of the C2050.
#[test]
fn paper_launch_geometry() {
    let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
    let shape = engine.shape_for(1000, 7000, false, 1024, 1792);
    assert_eq!(shape.grid_blocks(), 14);
    assert_eq!(engine.device().spec().num_sms, 14);
    assert_eq!(engine.mapping(), Mapping::ThreadPerRealization);
    assert_eq!(engine.block_size(), 128);
}

/// Fig. 6's qualitative claim: doubling N sharpens the DoS of the same
/// lattice (functional, reduced realizations).
#[test]
fn fig6_resolution_claim() {
    let h = paper_cubic_hamiltonian();
    let run = |n: usize| {
        let params =
            KpmParams::new(n).with_random_vectors(14, 1).with_grid_points(512).with_seed(60);
        let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let (dos, time) = engine.compute_dos_csr(&h, &params).unwrap();
        (dos, time.total().as_secs_f64())
    };
    let (dos_lo, t_lo) = run(128);
    let (dos_hi, t_hi) = run(256);
    // "although the case of N = 512 shows higher resolution of the DoS,
    //  it takes longer calculation time" (scaled down to 128/256 here).
    let tv = |rho: &[f64]| rho.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>();
    assert!(tv(&dos_hi.rho) > tv(&dos_lo.rho), "higher N resolves more structure");
    assert!(t_hi > t_lo, "and costs more modeled time: {t_lo} vs {t_hi}");
    // Both integrate to ~1.
    assert!((dos_lo.integrate() - 1.0).abs() < 0.03);
    assert!((dos_hi.integrate() - 1.0).abs() < 0.03);
}

/// The modeled speedups land in the paper's reported bands (the headline
/// reproduction; full tables in EXPERIMENTS.md / `repro all`).
#[test]
fn headline_speedups_match_paper_bands() {
    use kpm_bench_check::*;
    // Fig. 5 at N = 1024: paper ~3.5x.
    let fig5 = speedup_sparse(1000, 7000, 1024);
    assert!((2.8..=4.8).contains(&fig5), "Fig. 5 speedup {fig5}");
    // Fig. 7 at N = 2048: paper ~4x.
    let fig7 = speedup_dense(128, 2048);
    assert!((3.2..=5.0).contains(&fig7), "Fig. 7 speedup {fig7}");
    // Fig. 8 at H_SIZE = 4096: paper ~4x.
    let fig8 = speedup_dense(4096, 128);
    assert!((3.2..=5.5).contains(&fig8), "Fig. 8 speedup {fig8}");
}

/// Minimal in-test mirror of the bench crate's pricing (kept here so the
/// integration test does not depend on the bench crate).
mod kpm_bench_check {
    use kpm_suite::kpm::workload::KpmWorkload;
    use kpm_suite::stream::StreamKpmEngine;
    use kpm_suite::streamsim::{CpuSpec, GpuSpec, HostClock, MemTraffic};

    fn cpu_time(w: &KpmWorkload) -> f64 {
        let spec = CpuSpec::core_i7_930();
        let mut clock = HostClock::new();
        let conv = |p: kpm_suite::kpm::workload::PhaseProfile| MemTraffic {
            flops: p.flops,
            bytes: p.bytes,
            working_set_bytes: p.working_set_bytes,
        };
        let rng = clock.charge(&spec, &conv(w.rng_profile())).as_secs_f64();
        let mv = clock.charge(&spec, &conv(w.matvec_profile())).as_secs_f64();
        let cd = clock.charge(&spec, &conv(w.combine_dot_profile())).as_secs_f64();
        w.realizations as f64
            * (rng + mv * (w.num_moments as f64 - 1.0) + cd * w.num_moments as f64)
    }

    /// Overlap-off event pipeline: same numbers as the retired analytic
    /// estimate (pinned bitwise in kpm-streamsim's tests).
    fn gpu_time(engine: &StreamKpmEngine, shape: kpm_suite::streamsim::MomentLaunchShape) -> f64 {
        kpm_suite::streamsim::MomentRunPlan::new(shape)
            .with_overlap(false)
            .total(engine.device().spec(), 0.2)
            .as_secs_f64()
    }

    pub fn speedup_sparse(d: usize, nnz: usize, n: usize) -> f64 {
        let w = KpmWorkload { dim: d, stored_entries: nnz, num_moments: n, realizations: 1792 };
        let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let shape = engine.shape_for(d, nnz, false, n, 1792);
        cpu_time(&w) / gpu_time(&engine, shape)
    }

    pub fn speedup_dense(d: usize, n: usize) -> f64 {
        let w = KpmWorkload { dim: d, stored_entries: d * d, num_moments: n, realizations: 1792 };
        let engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
        let shape = engine.shape_for(d, d * d, true, n, 1792);
        cpu_time(&w) / gpu_time(&engine, shape)
    }
}
