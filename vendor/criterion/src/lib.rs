//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the external
//! `criterion` dev-dependency is replaced by this path crate (wired up in
//! the workspace `Cargo.toml`). It keeps the `benches/` targets compiling
//! and runnable: each benchmark runs a short warmup followed by
//! `sample_size` timed iterations and prints min/median/mean wall times.
//! There is no statistical analysis, outlier detection, or HTML report —
//! use upstream criterion for publication-grade numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { name: name.into(), parameter: Some(parameter.to_string()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => f.write_str(&self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.into(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name, parameter: None }
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warmup call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(label: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.3e} elem/s", n as f64 / median.as_secs_f64().max(1e-12))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.3e} B/s", n as f64 / median.as_secs_f64().max(1e-12))
        }
        None => String::new(),
    };
    println!(
        "{label:<48} min {:>12.6?}  median {:>12.6?}  mean {:>12.6?}{tp}",
        samples[0], median, mean
    );
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        let label = format!("{}/{}", self.name, id.into());
        report(&label, &mut b.samples, self.throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        let label = format!("{}/{}", self.name, id.into());
        report(&label, &mut b.samples, self.throughput);
        self
    }

    /// Ends the group (upstream flushes reports here; we report eagerly).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.default_sample_size == 0 { 10 } else { self.default_sample_size },
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // One warmup + three timed iterations.
        assert_eq!(calls, 4);
    }
}
