//! Offline stand-in for the subset of the `rayon` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the external
//! `rayon` dependency is replaced by this path crate (wired up in the
//! workspace `Cargo.toml`). It supports the call shape the workspace
//! actually uses — `(range).into_par_iter().map(f).collect()` /
//! `.reduce(identity, op)` — executing on scoped `std::thread`s, one
//! contiguous chunk per available core.
//!
//! Semantics match rayon where the workspace relies on them: `collect`
//! preserves index order and `reduce` folds results in index order, so
//! outputs are deterministic regardless of thread count.

use std::num::NonZeroUsize;

/// Re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// A mapped parallel iterator, ready to collect or reduce.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F, O> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Runs the map on all elements, preserving index order.
    fn run(self) -> Vec<O> {
        let n = self.items.len();
        let threads =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(n);
        if threads <= 1 {
            return self.items.into_iter().map(&self.f).collect();
        }
        let chunk_len = n.div_ceil(threads);
        let mut items = self.items;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        while !items.is_empty() {
            let tail = items.split_off(items.len().min(chunk_len));
            chunks.push(std::mem::replace(&mut items, tail));
        }
        let f = &self.f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.extend(h.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }

    /// Collects mapped elements in index order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Reduces mapped elements with `op`, starting from `identity()` and
    /// folding in index order (a deterministic refinement of rayon's
    /// unordered reduce — valid because rayon requires `op` to be
    /// associative anyway).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> O
    where
        ID: Fn() -> O,
        OP: Fn(O, O) -> O,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &v) in squares.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn reduce_folds_all_elements() {
        let sum = (0..101).into_par_iter().map(|i| i as u64).reduce(|| 0u64, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn empty_range_collects_empty_and_reduces_to_identity() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let r = (0..0).into_par_iter().map(|i| i).reduce(|| 7usize, |a, b| a + b);
        assert_eq!(r, 7);
    }

    #[test]
    fn vec_source_works() {
        let doubled: Vec<i64> = vec![3i64, 1, 4, 1, 5].into_par_iter().map(|v| 2 * v).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }
}
