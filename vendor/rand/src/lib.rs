//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the external
//! `rand` dependency is replaced by this path crate (wired up in the
//! workspace `Cargo.toml`). It reproduces only the API surface the
//! workspace calls — `StdRng::seed_from_u64`, `Uniform::new_inclusive`,
//! and `Distribution::sample` — on top of the same SplitMix64 generator
//! the `kpm` crate already uses for its counter-based streams.
//!
//! The stream of `StdRng` therefore differs numerically from upstream
//! `rand`'s ChaCha-based `StdRng`; nothing in the workspace depends on the
//! exact upstream values, only on determinism for a given seed (which this
//! crate provides).

/// A seedable random number generator core.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53-bit resolution.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic, fast, and passes the statistical needs of the test
    /// suite (disorder realizations, GOE-like dense matrices).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble so nearby seeds give decorrelated streams.
            let mut rng = StdRng { state: seed };
            rng.state = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sampling distributions.
pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over an `f64` interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform {
        lo: f64,
        hi: f64,
    }

    impl Uniform {
        /// Uniform over the closed interval `[lo, hi]`.
        ///
        /// # Panics
        /// Panics if `lo > hi` or either bound is non-finite.
        pub fn new_inclusive(lo: f64, hi: f64) -> Self {
            assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
            assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
            Self { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform {
        #[inline]
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            self.lo + rng.next_f64() * (self.hi - self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniform_stays_in_bounds_and_covers_interval() {
        let dist = Uniform::new_inclusive(-2.0, 3.0);
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..4000).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&v| (-2.0..=3.0).contains(&v)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.1, "mean {mean} far from 0.5");
        assert!(samples.iter().any(|&v| v < -1.5));
        assert!(samples.iter().any(|&v| v > 2.5));
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn uniform_rejects_inverted_interval() {
        let _ = Uniform::new_inclusive(1.0, 0.0);
    }
}
