//! Value-generation strategies.

/// Deterministic per-case generator (SplitMix64 seeded from the test name
/// and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = Self { state: h ^ ((case as u64) << 32 | 0x9e37) };
        // Warm up so nearby case indices decorrelate.
        let _ = rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a dependent strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { outer: self, f }
    }

    /// Maps each sampled value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`] arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Flat-mapped strategy; see [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    outer: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.outer.sample(rng)).sample(rng)
    }
}

/// Mapped strategy; see [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample_dyn(rng)
    }
}

/// Weighted choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_below(total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range {self:?}");
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range {self:?}");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty integer range {self:?}");
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    self.start() + rng.next_below(span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let f = (-2.0..3.0f64).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (5usize..9).sample(&mut rng);
            assert!((5..9).contains(&u));
            let i = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = TestRng::for_case("ends", 1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(1usize..=4).sample(&mut rng) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn flat_map_feeds_outer_value_to_inner() {
        let strat = (1usize..=5).prop_flat_map(|n| (Just(n), 0..n));
        let mut rng = TestRng::for_case("flat", 2);
        for _ in 0..100 {
            let (n, k) = strat.sample(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let u = Union::new(vec![(0u32, Just(1i32 as usize).boxed()), (1, Just(2usize).boxed())]);
        let mut rng = TestRng::for_case("union", 3);
        for _ in 0..50 {
            assert_eq!(u.sample(&mut rng), 2);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        let mut c = TestRng::for_case("det", 8);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
