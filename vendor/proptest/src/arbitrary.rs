//! `any::<T>()` support for types with a canonical strategy.

use crate::strategy::{Strategy, TestRng};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for [`bool`]: fair coin.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Strategy for [`u64`]: full domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct U64Strategy;

impl Strategy for U64Strategy {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u64 {
    type Strategy = U64Strategy;

    fn arbitrary() -> U64Strategy {
        U64Strategy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_any_produces_both_values() {
        let mut rng = TestRng::for_case("bools", 0);
        let strat = any::<bool>();
        let vals: Vec<bool> = (0..100).map(|_| strat.sample(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b));
        assert!(vals.iter().any(|&b| !b));
    }
}
