//! Collection strategies.

use crate::strategy::{Strategy, TestRng};

/// A length specification for [`vec()`](vec()): an exact size, `lo..hi`, or
/// `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`](vec()).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_all_size_forms() {
        let mut rng = TestRng::for_case("sizes", 0);
        for _ in 0..100 {
            assert_eq!(vec(0u32..5, 3).sample(&mut rng).len(), 3);
            let l = vec(0u32..5, 1..4).sample(&mut rng).len();
            assert!((1..4).contains(&l));
            let m = vec(0u32..5, 2..=6).sample(&mut rng).len();
            assert!((2..=6).contains(&m));
        }
    }

    #[test]
    fn elements_come_from_element_strategy() {
        let mut rng = TestRng::for_case("elems", 1);
        let v = vec(10u64..20, 50).sample(&mut rng);
        assert!(v.iter().all(|&x| (10..20).contains(&x)));
    }
}
