//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the external
//! `proptest` dev-dependency is replaced by this path crate (wired up in
//! the workspace `Cargo.toml`). It implements the pieces the workspace's
//! property tests call:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: numeric ranges, tuples, [`strategy::Just`],
//!   [`collection::vec`], [`prop_oneof!`], [`arbitrary::any`], and
//!   [`strategy::Strategy::prop_flat_map`] / `prop_map` / `boxed`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name), there is
//! no shrinking, and `proptest-regressions` files are ignored. A failing
//! case panics with the case index so it can be replayed by rerunning the
//! test (generation is deterministic).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::strategy::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat), &mut __rng);
                    )*
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion: on failure the current case returns an error
/// (reported with the case index by [`proptest!`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Property equality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}: {:?} != {:?}",
                    stringify!($left), stringify!($right), __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}: {:?} != {:?}: {}",
                    stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Picks one of several strategies per sample, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
