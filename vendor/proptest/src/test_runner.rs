//! Test-runner configuration and case errors.

use std::fmt;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256; the workspace's properties
    /// are dense enough that this keeps the suite fast without losing the
    /// regressions these tests were written to catch.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_and_error_basics() {
        assert_eq!(ProptestConfig::with_cases(8).cases, 8);
        assert_eq!(ProptestConfig::default().cases, 64);
        let e = TestCaseError::fail("boom");
        assert_eq!(e.to_string(), "boom");
    }
}
